"""Codecs between live run state and its snapshot-serializable form.

Snapshots store arrays (NumPy, via the ``.npz`` payload) and a JSON
metadata record; everything stateful that is *not* an array — RNG
streams, quarantine sets, telemetry cursors — must round-trip through
JSON.  The helpers here are deliberately duck-typed (they look at
``client.rng`` / ``client._last_delta`` attributes rather than
importing :mod:`repro.fl`), which keeps :mod:`repro.persist` free of
upward dependencies.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "DELTA_PREFIX",
    "AGGREGATOR_PREFIX",
    "rng_state_to_jsonable",
    "rng_state_from_jsonable",
    "pack_state_arrays",
    "unpack_state_arrays",
    "capture_client_states",
    "restore_client_states",
    "shared_fault_model",
    "stitch_streams",
]

# array names carrying FaultyClient stale-replay caches in a snapshot;
# consumers filter on it to separate client arrays from model arrays
DELTA_PREFIX = "client_delta."
_DELTA_PREFIX = DELTA_PREFIX

# array names carrying an Aggregator's state_dict arrays in a snapshot
AGGREGATOR_PREFIX = "aggregator_state."

_ARRAY_MARKER = "__array__"


def rng_state_to_jsonable(rng: np.random.Generator | None):
    """A generator's full stream position as plain JSON types.

    ``None`` passes through (rng-less stubs).  The encoding is the
    ``bit_generator.state`` dict with any NumPy scalars/arrays coerced
    to Python ints/lists, so ``json.dumps`` round-trips it exactly.
    """
    if rng is None:
        return None
    return _jsonable(rng.bit_generator.state)


def rng_state_from_jsonable(rng: np.random.Generator, state) -> None:
    """Advance ``rng`` to a position captured by :func:`rng_state_to_jsonable`."""
    if state is not None:
        rng.bit_generator.state = state


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def pack_state_arrays(
    state: dict, prefix: str
) -> tuple[dict, dict[str, np.ndarray]]:
    """Split a nested ``state_dict`` into JSON metadata plus named arrays.

    Snapshots keep arrays in the ``.npz`` payload (byte-exact float64
    round-trip) and everything else in JSON metadata.  This walks an
    arbitrary nesting of dicts/lists, hoists every ``np.ndarray`` leaf
    into the returned array mapping under ``prefix``-namespaced keys,
    and leaves an ``{"__array__": key}`` marker in its place for
    :func:`unpack_state_arrays` to resolve.
    """
    arrays: dict[str, np.ndarray] = {}

    def walk(value, path):
        if isinstance(value, np.ndarray):
            key = prefix + ".".join(path)
            arrays[key] = value
            return {_ARRAY_MARKER: key}
        if isinstance(value, dict):
            return {
                str(k): walk(v, path + (str(k),)) for k, v in value.items()
            }
        if isinstance(value, (list, tuple)):
            return [walk(v, path + (str(i),)) for i, v in enumerate(value)]
        return _jsonable(value)

    return walk(state, ()), arrays


def unpack_state_arrays(meta: dict, arrays: Mapping[str, np.ndarray]) -> dict:
    """Rebuild a :func:`pack_state_arrays` state dict from a snapshot."""

    def walk(value):
        if isinstance(value, dict):
            if set(value) == {_ARRAY_MARKER}:
                key = value[_ARRAY_MARKER]
                if key not in arrays:
                    raise ValueError(
                        f"checkpoint meta references missing array {key!r}"
                    )
                return np.array(arrays[key], copy=True)
            return {k: walk(v) for k, v in value.items()}
        if isinstance(value, list):
            return [walk(v) for v in value]
        return value

    return walk(meta)


def capture_client_states(clients: Iterable) -> tuple[list[dict], dict[str, np.ndarray]]:
    """Snapshot every client's mutable state (RNG stream, replay cache).

    Returns ``(meta, arrays)``: per-client JSON records aligned with the
    iteration order, plus the arrays too big for JSON (a
    :class:`~repro.fl.faults.FaultyClient`'s ``_last_delta`` stale-replay
    cache).  Everything else a client owns (dataset, config, poisoned
    copy) is reconstructed from code + seed when the world is rebuilt,
    so it does not belong in a snapshot.
    """
    meta: list[dict] = []
    arrays: dict[str, np.ndarray] = {}
    for client in clients:
        client_id = getattr(client, "client_id", None)
        record = {
            "client_id": client_id,
            "rng": rng_state_to_jsonable(getattr(client, "rng", None)),
        }
        last_delta = getattr(client, "_last_delta", None)
        if last_delta is not None:
            key = f"{_DELTA_PREFIX}{client_id}"
            arrays[key] = np.asarray(last_delta)
            record["last_delta"] = key
        meta.append(record)
    return meta, arrays


def restore_client_states(
    clients: Sequence,
    meta: Sequence[dict],
    arrays: Mapping[str, np.ndarray],
) -> None:
    """Apply a :func:`capture_client_states` snapshot to a rebuilt population.

    Clients are matched by ``client_id`` (falling back to position for
    id-less stubs); a population that no longer contains a snapshotted
    client id raises — resuming against a different world is a config
    error, not something to paper over.
    """
    by_id = {
        getattr(client, "client_id", None): client for client in clients
    }
    for position, record in enumerate(meta):
        client_id = record.get("client_id")
        client = by_id.get(client_id)
        if client is None:
            if client_id is None and position < len(clients):
                client = clients[position]
            else:
                raise ValueError(
                    f"checkpoint names client {client_id!r} but the rebuilt "
                    f"population has no such client — resuming against a "
                    f"different world?"
                )
        rng = getattr(client, "rng", None)
        if rng is not None and record.get("rng") is not None:
            rng_state_from_jsonable(rng, record["rng"])
        delta_key = record.get("last_delta")
        if delta_key is not None:
            if delta_key not in arrays:
                raise ValueError(
                    f"checkpoint meta references missing array {delta_key!r}"
                )
            client._last_delta = np.array(arrays[delta_key], copy=True)


def shared_fault_model(clients: Iterable):
    """The population's shared fault schedule, if clients carry one.

    :class:`~repro.fl.faults.FaultyClient` wrappers all reference one
    :class:`~repro.fl.faults.FaultModel`; snapshotting it once (rather
    than per client) keeps its draw counters consistent on restore.
    Returns ``None`` for fault-free populations.
    """
    for client in clients:
        faults = getattr(client, "faults", None)
        if faults is not None:
            return faults
    return None


def stitch_streams(
    segments: Sequence[Sequence[dict]],
    resume_seqs: Sequence[int],
) -> list[dict]:
    """Splice telemetry event streams across crash/resume boundaries.

    ``segments`` are the event lists of each run attempt in order (the
    killed run, then each resumed continuation); ``resume_seqs[i]`` is
    the telemetry sequence number attempt ``i+1`` resumed from (saved in
    the checkpoint it loaded).  Events an attempt emitted *past* the
    checkpoint its successor resumed from were replayed by that
    successor and are dropped; events a resuming attempt emitted
    *before* restoring the cursor (resume diagnostics on a fresh hub)
    are likewise dropped.  The result of stitching a killed-and-resumed
    run equals the stream of the uninterrupted run, record for record —
    that is the determinism contract the resume tests assert bytewise
    (after :func:`repro.obs.schema.canonical_events`).
    """
    if len(resume_seqs) != len(segments) - 1:
        raise ValueError(
            f"need one resume seq per boundary: {len(segments)} segments "
            f"but {len(resume_seqs)} resume seqs"
        )
    stitched: list[dict] = []
    for index, segment in enumerate(segments):
        low = resume_seqs[index - 1] if index > 0 else 0
        high = resume_seqs[index] if index < len(resume_seqs) else None
        stitched.extend(
            event
            for event in segment
            if event["seq"] >= low and (high is None or event["seq"] < high)
        )
    return stitched
