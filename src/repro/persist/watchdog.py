"""Divergence detection for long round loops.

Federated training at production scale fails in ways payload validation
cannot catch: every individual delta is finite and well-shaped, yet the
aggregate overflows (many large-but-finite updates), the update norm
explodes (an amplified attacker slipping past clipping), or the global
model's validation accuracy collapses over a round.  A
:class:`DivergenceWatchdog` gives the round loop a cheap, deterministic
verdict *before* a bad aggregate is applied — and after evaluation, a
verdict on whether the round it just applied should be rolled back.

The watchdog holds no model state and draws no randomness; its verdicts
are pure functions of the observations, so a run with a watchdog is as
deterministic as one without (and bitwise identical whenever the
watchdog never fires).
"""

from __future__ import annotations

import numpy as np

__all__ = ["DivergenceWatchdog"]


class DivergenceWatchdog:
    """Detects non-finite aggregates, norm explosions, accuracy collapse.

    Parameters
    ----------
    max_update_norm:
        Reject an aggregated update whose L2 norm exceeds this; ``None``
        disables the norm check (non-finite aggregates are always
        rejected — there is no configuration in which applying NaN is
        right).
    collapse_drop:
        Roll back a round whose post-aggregation validation accuracy
        fell more than this below the best accuracy seen so far;
        ``None`` disables the collapse check.
    warmup_rounds:
        Accuracy observations during the first ``warmup_rounds``
        establish the baseline without ever triggering a collapse —
        early training is legitimately volatile.
    """

    def __init__(
        self,
        max_update_norm: float | None = None,
        collapse_drop: float | None = None,
        warmup_rounds: int = 1,
    ) -> None:
        if max_update_norm is not None and max_update_norm <= 0:
            raise ValueError(
                f"max_update_norm must be > 0 or None, got {max_update_norm}"
            )
        if collapse_drop is not None and not 0.0 < collapse_drop <= 1.0:
            raise ValueError(
                f"collapse_drop must be in (0, 1] or None, got {collapse_drop}"
            )
        if warmup_rounds < 0:
            raise ValueError(f"warmup_rounds must be >= 0, got {warmup_rounds}")
        self.max_update_norm = max_update_norm
        self.collapse_drop = collapse_drop
        self.warmup_rounds = warmup_rounds
        self.best_accuracy: float | None = None
        self.rounds_observed = 0
        self.rollbacks = 0

    # -- verdicts ------------------------------------------------------

    def check_aggregate(self, aggregate: np.ndarray) -> str | None:
        """Reason the aggregated update must not be applied, or ``None``."""
        aggregate = np.asarray(aggregate)
        if not np.isfinite(aggregate).all():
            return "non-finite aggregated update"
        if self.max_update_norm is not None:
            norm = float(np.linalg.norm(aggregate))
            if norm > self.max_update_norm:
                return (
                    f"aggregated update norm {norm:.3g} exceeds "
                    f"limit {self.max_update_norm:.3g}"
                )
        return None

    def observe_accuracy(self, accuracy: float) -> str | None:
        """Record a round's validation accuracy; non-``None`` = roll back.

        The best-so-far baseline only advances on rounds that are *not*
        rolled back, so a collapse never poisons the reference it is
        judged against.
        """
        self.rounds_observed += 1
        in_warmup = self.rounds_observed <= self.warmup_rounds
        if (
            self.collapse_drop is not None
            and not in_warmup
            and self.best_accuracy is not None
            and accuracy < self.best_accuracy - self.collapse_drop
        ):
            return (
                f"validation accuracy collapsed to {accuracy:.3f} "
                f"(best {self.best_accuracy:.3f}, "
                f"tolerance {self.collapse_drop:.3f})"
            )
        if self.best_accuracy is None or accuracy > self.best_accuracy:
            self.best_accuracy = float(accuracy)
        return None

    def record_rollback(self) -> None:
        """Count a rollback the round loop performed on our verdict."""
        self.rollbacks += 1

    # -- persistence ---------------------------------------------------

    def state_dict(self) -> dict:
        """The watchdog's mutable state, JSON-serializable."""
        return {
            "best_accuracy": self.best_accuracy,
            "rounds_observed": self.rounds_observed,
            "rollbacks": self.rollbacks,
        }

    def load_state_dict(self, state: dict) -> None:
        best = state["best_accuracy"]
        self.best_accuracy = None if best is None else float(best)
        self.rounds_observed = int(state["rounds_observed"])
        self.rollbacks = int(state["rollbacks"])

    def __repr__(self) -> str:
        return (
            f"DivergenceWatchdog(max_update_norm={self.max_update_norm}, "
            f"collapse_drop={self.collapse_drop}, "
            f"rollbacks={self.rollbacks})"
        )
