"""Shared ``name:param=value`` spec-string parsing.

Both registries that build configurable objects from the command line —
aggregation rules (:mod:`repro.fl.aggregation`) and attack menus
(:mod:`repro.attacks.registry`) — accept the same compact spec grammar::

    fedavg
    trimmed_mean:trim_ratio=0.2
    norm_clip:budget=1.5,noise_std=0.01

Values are coerced to the narrowest matching Python type (bool, None,
int, float, then str), so registry constructors receive natural types
without per-parameter parsing code.
"""

from __future__ import annotations

__all__ = ["parse_spec", "coerce_value", "format_spec"]


def coerce_value(text: str):
    """The narrowest Python value a spec-string token denotes."""
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_spec(spec: str) -> tuple[str, dict]:
    """Split ``"name:k1=v1,k2=v2"`` into ``(name, params)``.

    The parameter block is optional (``"fedavg"`` parses to
    ``("fedavg", {})``).  Malformed specs — empty name, a bare ``:``,
    a parameter without ``=``, a duplicated key — raise ``ValueError``
    naming the offending fragment.
    """
    if not isinstance(spec, str):
        raise TypeError(f"spec must be a string, got {type(spec).__name__}")
    name, sep, rest = spec.partition(":")
    name = name.strip()
    if not name:
        raise ValueError(f"spec {spec!r} has no name")
    params: dict = {}
    if sep:
        rest = rest.strip()
        if not rest:
            raise ValueError(f"spec {spec!r} has ':' but no parameters")
        for item in rest.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or not key:
                raise ValueError(
                    f"expected 'param=value' in spec {spec!r}, "
                    f"got {item.strip()!r}"
                )
            if key in params:
                raise ValueError(f"duplicate parameter {key!r} in spec {spec!r}")
            params[key] = coerce_value(value.strip())
    return name, params


def format_spec(name: str, params: dict) -> str:
    """The canonical spec string for ``(name, params)`` (sorted keys)."""
    if not params:
        return name
    body = ",".join(f"{key}={params[key]}" for key in sorted(params))
    return f"{name}:{body}"
