"""Tests for the adaptive defense-phase attacks (paper §VI-B)."""

import numpy as np
import pytest

from repro import nn
from repro.attacks.adaptive import (
    SelfLimitedWeights,
    identify_backdoor_channels,
    manipulated_ranking,
    manipulated_votes,
)


class TestIdentifyBackdoorChannels:
    def test_picks_largest_gap(self):
        clean = np.array([0.5, 0.1, 0.3, 0.2])
        triggered = np.array([0.5, 0.9, 0.3, 0.6])
        top = identify_backdoor_channels(clean, triggered, top_k=2)
        np.testing.assert_array_equal(top, [1, 3])

    def test_validates_shapes(self):
        with pytest.raises(ValueError, match="identical shapes"):
            identify_backdoor_channels(np.zeros(3), np.zeros(4), 1)

    def test_validates_top_k(self):
        with pytest.raises(ValueError, match="top_k"):
            identify_backdoor_channels(np.zeros(3), np.zeros(3), 0)


class TestManipulatedRanking:
    def test_protected_moved_to_front(self):
        honest = np.array([4, 2, 0, 1, 3])  # most active first
        attacked = manipulated_ranking(honest, np.array([3, 1]))
        np.testing.assert_array_equal(attacked[:2], [3, 1])

    def test_rest_keeps_relative_order(self):
        honest = np.array([4, 2, 0, 1, 3])
        attacked = manipulated_ranking(honest, np.array([1]))
        np.testing.assert_array_equal(attacked, [1, 4, 2, 0, 3])

    def test_still_a_permutation(self):
        honest = np.arange(10)
        attacked = manipulated_ranking(honest, np.array([7, 8, 9]))
        np.testing.assert_array_equal(np.sort(attacked), np.arange(10))


class TestManipulatedVotes:
    def test_protected_votes_cleared(self):
        honest = np.array([1, 1, 0, 0, 0])
        attacked = manipulated_votes(honest, np.array([0]))
        assert attacked[0] == 0

    def test_budget_preserved(self):
        honest = np.array([1, 1, 1, 0, 0, 0])
        attacked = manipulated_votes(honest, np.array([0, 1]))
        assert attacked.sum() == honest.sum()

    def test_votes_moved_to_unprotected(self):
        honest = np.array([1, 0, 0, 0])
        attacked = manipulated_votes(honest, np.array([0]))
        assert attacked[0] == 0
        assert attacked.sum() == 1

    def test_noop_when_protected_unvoted(self):
        honest = np.array([0, 1, 1, 0])
        attacked = manipulated_votes(honest, np.array([0]))
        np.testing.assert_array_equal(attacked, honest)


class TestSelfLimitedWeights:
    def test_clips_extremes(self, rng):
        layer = nn.Conv2d(1, 4, kernel_size=3, rng=rng)
        layer.weight.data[0, 0, 0, 0] = 100.0  # an extreme value
        before = layer.weight.data
        bound = before.mean() + 2.0 * before.std()  # clip is vs pre-clip stats
        limiter = SelfLimitedWeights(delta=2.0)
        clipped = limiter.clip_layer(layer)
        assert clipped >= 1
        assert layer.weight.data.max() <= bound + 1e-9

    def test_clip_model_targets_last_conv(self, tiny_cnn):
        last = tiny_cnn.last_conv()
        last.weight.data[0, 0, 0, 0] = 50.0
        limiter = SelfLimitedWeights(delta=2.0)
        assert limiter.clip_model(tiny_cnn) >= 1
        assert last.weight.data.max() < 50.0

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            SelfLimitedWeights(delta=0.0)
