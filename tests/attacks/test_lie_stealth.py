"""The LIE and alignment-evading stealth attacks, math and clients."""

import numpy as np
import pytest

from repro.attacks.lie import lie_update, lie_z_max, normal_ppf
from repro.attacks.poison import BackdoorTask
from repro.attacks.registry import (
    AttackSpec,
    attack_names,
    build_attack,
)
from repro.attacks.stealth import stealth_update
from repro.attacks.triggers import pixel_pattern
from repro.data.dataset import Dataset
from repro.fl.attack_clients import LIEClient, StealthClient
from repro.fl.client import (
    Client,
    LocalTrainingConfig,
    MaliciousClient,
    megabatch_eligible,
)


class TestNormalPpf:
    @pytest.mark.parametrize(
        "p,expected",
        [
            (0.5, 0.0),
            (0.8413447460685429, 1.0),  # Phi(1)
            (0.9772498680518208, 2.0),  # Phi(2)
            (0.15865525393145707, -1.0),  # Phi(-1)
            (0.001, -3.0902323061678132),
            (0.999, 3.0902323061678132),
        ],
    )
    def test_known_quantiles(self, p, expected):
        assert normal_ppf(p) == pytest.approx(expected, abs=1e-6)

    def test_monotone(self):
        grid = np.linspace(0.01, 0.99, 50)
        values = [normal_ppf(p) for p in grid]
        assert all(a < b for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.1, 1.1])
    def test_domain(self, p):
        with pytest.raises(ValueError, match="in \\(0, 1\\)"):
            normal_ppf(p)


class TestLieZMax:
    def test_paper_regime_positive(self):
        # 50 clients, 12 colluders: the classic LIE setting has z > 0
        assert lie_z_max(50, 12) > 0.0

    def test_degenerate_populations_zero(self):
        assert lie_z_max(4, 2) == 0.0  # supporters >= benign
        assert lie_z_max(3, 3) == 0.0  # no benign clients

    def test_more_colluders_allow_larger_z(self):
        assert lie_z_max(50, 20) > lie_z_max(50, 5)

    def test_validation(self):
        with pytest.raises(ValueError, match="num_clients"):
            lie_z_max(0, 0)
        with pytest.raises(ValueError, match="num_byzantine"):
            lie_z_max(10, 11)


class TestLieUpdate:
    def test_deviation_bounded_by_z_sigma(self, rng):
        benign = rng.normal(0, 1.0, 100)
        poisoned = benign + rng.normal(0, 10.0, 100)
        crafted = lie_update(benign, poisoned, z=1.5)
        bound = 1.5 * benign.std()
        assert np.abs(crafted - benign).max() <= bound + 1e-12

    def test_moves_toward_poisoned(self, rng):
        benign = rng.normal(0, 1.0, 50)
        poisoned = benign + 0.1
        crafted = lie_update(benign, poisoned, z=3.0)
        # small deviations fit inside the envelope untouched
        np.testing.assert_allclose(crafted, poisoned)

    def test_z_zero_is_honest(self, rng):
        benign = rng.normal(0, 1.0, 20)
        crafted = lie_update(benign, benign + 100.0, z=0.0)
        np.testing.assert_array_equal(crafted, benign)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="shapes"):
            lie_update(np.zeros(3), np.zeros(4), 1.0)
        with pytest.raises(ValueError, match="z must be"):
            lie_update(np.zeros(3), np.zeros(3), -1.0)


class TestStealthUpdate:
    def test_only_small_coordinates_change(self):
        benign = np.array([10.0, 0.1, 20.0, 0.2, 30.0, 0.3, 40.0, 0.4])
        poisoned = benign + 5.0
        crafted = stealth_update(benign, poisoned, fraction=0.5, norm_match=False)
        # the four large-magnitude coordinates stay benign
        np.testing.assert_array_equal(crafted[[0, 2, 4, 6]], benign[[0, 2, 4, 6]])
        # the four small ones carry the poisoned values
        np.testing.assert_array_equal(crafted[[1, 3, 5, 7]], poisoned[[1, 3, 5, 7]])

    def test_norm_matched(self, rng):
        benign = rng.normal(0, 1.0, 200)
        poisoned = benign + rng.normal(0, 5.0, 200)
        crafted = stealth_update(benign, poisoned, fraction=0.25)
        assert np.linalg.norm(crafted) == pytest.approx(np.linalg.norm(benign))

    def test_deterministic_tie_break(self):
        benign = np.zeros(6)
        poisoned = np.arange(6.0)
        a = stealth_update(benign, poisoned, fraction=0.5, norm_match=False)
        b = stealth_update(benign, poisoned, fraction=0.5, norm_match=False)
        np.testing.assert_array_equal(a, b)

    def test_full_fraction_is_poisoned(self, rng):
        benign = rng.normal(0, 1.0, 30)
        poisoned = rng.normal(0, 1.0, 30)
        crafted = stealth_update(benign, poisoned, fraction=1.0, norm_match=False)
        np.testing.assert_allclose(crafted, poisoned)

    def test_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            stealth_update(np.zeros(4), np.zeros(4), fraction=0.0)
        with pytest.raises(ValueError, match="shapes"):
            stealth_update(np.zeros(3), np.zeros(4))


def make_attacker(cls, **kwargs):
    rng = np.random.default_rng(7)
    size, classes, total = 8, 4, 40
    images = rng.random((total, 1, size, size))
    labels = np.tile(np.arange(classes), total // classes)
    dataset = Dataset(images, labels)
    task = BackdoorTask(pixel_pattern(3, size), victim_label=3, attack_label=1)
    config = LocalTrainingConfig(lr=0.05, batch_size=8, local_epochs=1)
    client = cls(
        0, dataset, config, np.random.default_rng(13), task, **kwargs
    )
    return client


def tiny_model():
    from repro import nn

    rng = np.random.default_rng(5)
    return nn.Sequential(
        nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(4 * 16, 4, rng=rng),
    )


class TestAttackClients:
    @pytest.mark.parametrize("cls", [LIEClient, StealthClient])
    def test_not_megabatch_eligible(self, cls):
        assert not megabatch_eligible(make_attacker(cls))

    def test_lie_delta_stays_in_envelope(self):
        model = tiny_model()
        params = model.flat_parameters()
        attacker = make_attacker(LIEClient, z=1.0)
        benign_twin = make_attacker(LIEClient, z=1.0)
        benign_twin._attacking_now = False
        benign = Client.local_update(benign_twin, tiny_model(), params)
        delta = attacker.local_update(model, params)
        # float32 params: the clip boundary is only exact to eps
        bound = 1.0 * np.float64(benign.std())
        assert np.abs(delta - benign).max() <= bound * (1 + 1e-6)

    def test_stealth_delta_norm_matches_benign(self):
        model = tiny_model()
        params = model.flat_parameters()
        attacker = make_attacker(StealthClient)
        benign_twin = make_attacker(StealthClient)
        benign_twin._attacking_now = False
        benign = Client.local_update(benign_twin, tiny_model(), params)
        delta = attacker.local_update(model, params)
        assert np.linalg.norm(delta) == pytest.approx(
            np.linalg.norm(benign), rel=1e-5
        )

    @pytest.mark.parametrize(
        "cls,kwargs",
        [(LIEClient, {"z": 1.0}), (StealthClient, {"fraction": 0.25})],
    )
    def test_benign_before_attack_start(self, cls, kwargs):
        attacker = make_attacker(cls, attack_start_round=5, **kwargs)
        twin = make_attacker(cls, attack_start_round=5, **kwargs)
        twin._attacking_now = False
        params = tiny_model().flat_parameters()
        early = attacker.local_update(tiny_model(), params, round_index=0)
        benign = Client.local_update(twin, tiny_model(), params, round_index=0)
        assert early.tobytes() == benign.tobytes()

    @pytest.mark.parametrize(
        "cls,kwargs",
        [(LIEClient, {"z": 1.5}), (StealthClient, {"fraction": 0.25})],
    )
    def test_deterministic_crafting(self, cls, kwargs):
        params = tiny_model().flat_parameters()
        a = make_attacker(cls, **kwargs).local_update(tiny_model(), params, 0)
        b = make_attacker(cls, **kwargs).local_update(tiny_model(), params, 0)
        assert a.tobytes() == b.tobytes()

    def test_validation(self):
        with pytest.raises(ValueError, match="z must be"):
            make_attacker(LIEClient, z=-1.0)
        with pytest.raises(ValueError, match="fraction"):
            make_attacker(StealthClient, fraction=2.0)


class TestAttackRegistry:
    def test_expected_names(self):
        assert attack_names() == [
            "badnets", "dba", "lie", "replacement", "stealth",
        ]

    def test_build_by_name(self):
        spec = build_attack("lie")
        assert isinstance(spec, AttackSpec)
        assert spec.client_cls is LIEClient
        assert not spec.amplify

    def test_spec_string_merges_params(self):
        spec = build_attack("stealth:fraction=0.1")
        assert spec.params == {"fraction": 0.1}
        assert spec.spec() == "stealth:fraction=0.1"
        # the registered default is untouched
        assert build_attack("stealth").params == {}

    def test_flags(self):
        assert build_attack("dba").dba and build_attack("dba").amplify
        assert build_attack("replacement").amplify
        assert not build_attack("badnets").amplify

    def test_unknown_attack(self):
        with pytest.raises(ValueError, match="unknown attack"):
            build_attack("bogus")

    def test_unknown_parameter_fails_eagerly(self):
        with pytest.raises(ValueError, match="no parameter"):
            build_attack("lie:gamma=5")

    def test_reserved_parameter_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            build_attack("badnets:rng=1")

    def test_build_client_routes_gamma_only_when_amplifying(self):
        kwargs = dict(
            client_id=0,
            dataset=Dataset(
                np.random.default_rng(0).random((8, 1, 8, 8)),
                np.tile(np.arange(4), 2),
            ),
            config=LocalTrainingConfig(batch_size=4),
            rng=np.random.default_rng(1),
            task=BackdoorTask(pixel_pattern(3, 8), 3, 1),
        )
        amplified = build_attack("replacement").build_client(
            *kwargs.values(), gamma=5.0, attack_start_round=2
        )
        assert isinstance(amplified, MaliciousClient)
        assert amplified.gamma == 5.0
        assert amplified.attack_start_round == 2
        stealthy = build_attack("lie").build_client(
            *kwargs.values(), gamma=5.0
        )
        assert isinstance(stealthy, LIEClient)
        assert stealthy.gamma == 1.0
