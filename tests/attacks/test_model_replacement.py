"""Tests for the model replacement attack arithmetic."""

import numpy as np
import pytest

from repro.attacks.model_replacement import amplify_update, replacement_update
from repro.fl.aggregation import fedavg


class TestAmplifyUpdate:
    def test_scales(self):
        np.testing.assert_array_equal(
            amplify_update(np.array([1.0, -2.0]), 3.0), [3.0, -6.0]
        )

    def test_gamma_one_is_identity(self, rng):
        update = rng.standard_normal(5)
        np.testing.assert_array_equal(amplify_update(update, 1.0), update)

    def test_rejects_gamma_below_one(self):
        with pytest.raises(ValueError, match="gamma"):
            amplify_update(np.zeros(3), 0.5)


class TestReplacementUpdate:
    def test_full_replacement_with_gamma_n(self, rng):
        """With gamma = N and zero benign deltas, aggregation yields x_atk
        exactly (the paper's Equation 1 ideal)."""
        n = 5
        global_params = rng.standard_normal(8)
        attacker_target = rng.standard_normal(8)

        malicious_params = replacement_update(attacker_target, global_params, gamma=n)
        deltas = np.zeros((n, 8))
        deltas[0] = malicious_params - global_params  # benign deltas are 0
        new_global = global_params + fedavg(deltas)
        np.testing.assert_allclose(new_global, attacker_target)

    def test_partial_gamma_moves_toward_target(self, rng):
        n = 10
        global_params = np.zeros(4)
        target = np.ones(4)
        deltas = np.zeros((n, 4))
        deltas[0] = replacement_update(target, global_params, gamma=5.0) - global_params
        new_global = global_params + fedavg(deltas)
        np.testing.assert_allclose(new_global, 0.5 * target)  # gamma/N of the way

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            replacement_update(np.zeros(3), np.zeros(4), 2.0)
