"""Tests for poisoned dataset construction."""

import numpy as np
import pytest

from repro.attacks.poison import BackdoorTask, backdoor_eval_set, poison_dataset
from repro.attacks.triggers import pixel_pattern
from repro.data.dataset import Dataset


@pytest.fixture
def task():
    return BackdoorTask(pixel_pattern(3, 8), victim_label=4, attack_label=1)


@pytest.fixture
def clean(rng):
    images = rng.random((50, 1, 8, 8)) * 0.5
    labels = np.repeat(np.arange(5), 10)
    return Dataset(images, labels)


class TestBackdoorTask:
    def test_same_labels_rejected(self):
        with pytest.raises(ValueError, match="must differ"):
            BackdoorTask(pixel_pattern(1, 8), 3, 3)


class TestPoisonDatasetAllToOne:
    """Default BadNets recipe: every sample is a poisoning candidate."""

    def test_doubles_dataset(self, clean, task):
        poisoned = poison_dataset(clean, task)
        assert len(poisoned) == 100  # every sample duplicated as poison

    def test_poisoned_copies_carry_attack_label(self, clean, task):
        poisoned = poison_dataset(clean, task)
        # 10 original attack-label samples + 50 poisoned copies
        assert (poisoned.labels == task.attack_label).sum() == 60

    def test_poisoned_images_have_trigger(self, clean, task):
        poisoned = poison_dataset(clean, task)
        stamped = poisoned.images[:, :, task.trigger.mask]
        has_trigger = (stamped == task.trigger.value).all(axis=(1, 2))
        assert has_trigger.sum() == 50

    def test_clean_samples_unchanged(self, clean, task):
        poisoned = poison_dataset(clean, task)
        np.testing.assert_array_equal(poisoned.images[:50], clean.images)

    def test_fraction_sampling(self, clean, task, rng):
        poisoned = poison_dataset(clean, task, poison_fraction=0.2, rng=rng)
        assert len(poisoned) == 60  # 20% of 50 candidates


class TestPoisonDatasetSingleSource:
    """Victim-only recipe (all_to_one=False)."""

    def test_adds_victim_copies_only(self, clean, task):
        poisoned = poison_dataset(clean, task, all_to_one=False)
        assert len(poisoned) == 60  # 50 clean + 10 poisoned victim copies
        assert (poisoned.labels == task.attack_label).sum() == 20

    def test_no_victim_data_returns_clean(self, rng, task):
        no_victims = Dataset(rng.random((10, 1, 8, 8)), np.zeros(10, dtype=int))
        result = poison_dataset(no_victims, task, all_to_one=False)
        assert result is no_victims

    def test_fraction_sampling(self, clean, task, rng):
        poisoned = poison_dataset(
            clean, task, poison_fraction=0.5, rng=rng, all_to_one=False
        )
        assert len(poisoned) == 55

    def test_fraction_requires_rng(self, clean, task):
        with pytest.raises(ValueError, match="requires an rng"):
            poison_dataset(clean, task, poison_fraction=0.5)

    def test_invalid_fraction(self, clean, task):
        with pytest.raises(ValueError):
            poison_dataset(clean, task, poison_fraction=0.0)

    def test_shuffle_with_rng(self, clean, task, rng):
        poisoned = poison_dataset(clean, task, rng=rng)
        # order differs from plain concatenation
        assert not np.array_equal(poisoned.labels[:50], clean.labels)


class TestBackdoorEvalSet:
    def test_all_triggered_and_relabeled(self, clean, task):
        eval_set = backdoor_eval_set(clean, task)
        assert len(eval_set) == 10
        assert (eval_set.labels == task.attack_label).all()
        stamped = eval_set.images[:, :, task.trigger.mask]
        assert (stamped == task.trigger.value).all()

    def test_no_victims_raises(self, rng, task):
        no_victims = Dataset(rng.random((5, 1, 8, 8)), np.zeros(5, dtype=int))
        with pytest.raises(ValueError, match="no samples of victim"):
            backdoor_eval_set(no_victims, task)
