"""Tests for the semantic backdoor variant."""

import numpy as np
import pytest

from repro.attacks.semantic import (
    SemanticFeature,
    poison_with_feature,
    semantic_backdoor_eval_set,
)
from repro.data.dataset import Dataset


@pytest.fixture
def clean(rng):
    images = rng.random((50, 1, 16, 16)) * 0.3
    labels = np.repeat(np.arange(5), 10)
    return Dataset(images, labels)


class TestSemanticFeature:
    def test_apply_brightens_a_band(self, clean):
        feature = SemanticFeature(intensity=0.9)
        painted = feature.apply(clean.images)
        # the stripe raises many pixels to ~0.9
        assert (painted >= 0.85).sum() > 10
        # and never darkens anything
        assert (painted >= clean.images - 1e-7).all()

    def test_apply_copies(self, clean):
        feature = SemanticFeature()
        before = clean.images.copy()
        feature.apply(clean.images)
        np.testing.assert_array_equal(clean.images, before)

    def test_deterministic(self, clean):
        feature = SemanticFeature()
        a = feature.apply(clean.images)
        b = feature.apply(clean.images)
        np.testing.assert_array_equal(a, b)

    def test_rejects_non_nchw(self):
        with pytest.raises(ValueError, match="NCHW"):
            SemanticFeature().apply(np.zeros((4, 4)))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SemanticFeature(thickness=0.0)
        with pytest.raises(ValueError):
            SemanticFeature(intensity=0.0)


class TestPoisonWithFeature:
    def test_adds_painted_victim_copies(self, clean):
        feature = SemanticFeature()
        poisoned = poison_with_feature(clean, feature, victim_label=4, attack_label=0)
        assert len(poisoned) == 60
        assert (poisoned.labels == 0).sum() == 20  # 10 original + 10 painted

    def test_same_labels_rejected(self, clean):
        with pytest.raises(ValueError, match="must differ"):
            poison_with_feature(clean, SemanticFeature(), 3, 3)

    def test_no_victims_returns_clean(self, rng):
        no_victims = Dataset(rng.random((5, 1, 16, 16)), np.zeros(5, dtype=int))
        result = poison_with_feature(
            no_victims, SemanticFeature(), victim_label=4, attack_label=0
        )
        assert result is no_victims


class TestSemanticEvalSet:
    def test_eval_set_painted_and_relabelled(self, clean):
        feature = SemanticFeature()
        eval_set = semantic_backdoor_eval_set(clean, feature, 4, 0)
        assert len(eval_set) == 10
        assert (eval_set.labels == 0).all()
        assert (eval_set.images >= 0.85).any()

    def test_missing_victims_rejected(self, clean):
        no_victims = clean.without_label(4)
        with pytest.raises(ValueError, match="victim"):
            semantic_backdoor_eval_set(no_victims, SemanticFeature(), 4, 0)


class TestSemanticBackdoorLearns:
    def test_model_learns_semantic_mapping(self, rng):
        """A small net trained on semantically-poisoned data flips
        stripe-painted victim images to the attack label."""
        from repro import nn
        from repro.data.dataset import DataLoader
        from repro.data.synthetic import synthetic_mnist

        data = synthetic_mnist(600, seed=5, image_size=16)
        feature = SemanticFeature()
        poisoned = poison_with_feature(data, feature, 9, 1, rng=rng)
        model = nn.zoo.mnist_cnn(np.random.default_rng(0), image_size=16)
        loss_fn = nn.CrossEntropyLoss()
        optimizer = nn.SGD(model.parameters(), lr=0.1, momentum=0.5)
        loader = DataLoader(poisoned, batch_size=32, shuffle=True, rng=rng)
        for _ in range(6):
            for x, y in loader:
                loss_fn(model(x), y)
                optimizer.zero_grad()
                model.backward(loss_fn.backward())
                optimizer.step()
        eval_set = semantic_backdoor_eval_set(data, feature, 9, 1)
        predictions = model(eval_set.images).argmax(axis=1)
        assert (predictions == 1).mean() > 0.5
