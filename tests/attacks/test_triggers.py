"""Tests for trigger patterns: BadNets pixels and DBA decomposition."""

import numpy as np
import pytest

from repro.attacks.triggers import (
    PIXEL_PATTERN_OFFSETS,
    Trigger,
    dba_global_trigger,
    dba_local_triggers,
    pixel_pattern,
)


class TestTrigger:
    def test_apply_stamps_and_copies(self, rng):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, 0] = True
        trigger = Trigger(mask, value=1.0)
        images = rng.random((3, 1, 8, 8)) * 0.5
        stamped = trigger.apply(images)
        assert (stamped[:, :, 0, 0] == 1.0).all()
        assert images[0, 0, 0, 0] != 1.0 or images[0, 0, 0, 0] == 0.5  # original intact

    def test_apply_only_touches_mask(self, rng):
        mask = np.zeros((8, 8), dtype=bool)
        mask[2, 3] = True
        trigger = Trigger(mask)
        images = rng.random((2, 3, 8, 8))
        stamped = trigger.apply(images)
        untouched = ~mask
        np.testing.assert_array_equal(
            stamped[:, :, untouched], images[:, :, untouched]
        )

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Trigger(np.zeros((4, 4), dtype=bool))

    def test_shape_mismatch_rejected(self, rng):
        trigger = pixel_pattern(1, 8)
        with pytest.raises(ValueError, match="spatial dims"):
            trigger.apply(rng.random((1, 1, 10, 10)))

    def test_union(self):
        a = pixel_pattern(1, 8, anchor=(0, 0))
        b = pixel_pattern(1, 8, anchor=(5, 5))
        combined = a.union(b)
        assert combined.num_pixels == 2

    def test_union_shape_mismatch(self):
        with pytest.raises(ValueError):
            pixel_pattern(1, 8).union(pixel_pattern(1, 10))


class TestPixelPatterns:
    @pytest.mark.parametrize("num_pixels", [1, 3, 5, 7, 9])
    def test_pixel_count_matches(self, num_pixels):
        trigger = pixel_pattern(num_pixels, 28)
        assert trigger.num_pixels == num_pixels

    def test_patterns_fit_3x3_box(self):
        for pixels, offsets in PIXEL_PATTERN_OFFSETS.items():
            rows = [r for r, _ in offsets]
            cols = [c for _, c in offsets]
            assert max(rows) <= 2 and max(cols) <= 2, pixels

    def test_invalid_count(self):
        with pytest.raises(ValueError, match="num_pixels"):
            pixel_pattern(4, 28)

    def test_anchor_out_of_bounds(self):
        with pytest.raises(ValueError, match="outside image"):
            pixel_pattern(9, 28, anchor=(27, 27))

    def test_default_anchor_in_corner(self):
        trigger = pixel_pattern(9, 28)
        rows, cols = np.nonzero(trigger.mask)
        assert rows.max() < 5 and cols.max() < 5


class TestDBA:
    def test_four_local_patterns(self):
        locals_ = dba_local_triggers(28)
        assert len(locals_) == 4

    def test_locals_are_disjoint(self):
        locals_ = dba_local_triggers(28)
        total = sum(t.mask.astype(int) for t in locals_)
        assert total.max() == 1

    def test_global_is_union_of_locals(self):
        globl = dba_global_trigger(28)
        locals_ = dba_local_triggers(28)
        union = np.zeros_like(globl.mask)
        for t in locals_:
            union |= t.mask
        np.testing.assert_array_equal(globl.mask, union)

    def test_too_small_image_rejected(self):
        with pytest.raises(ValueError, match="exceeds image"):
            dba_local_triggers(5)

    def test_arm_auto_shrinks_for_small_images(self):
        locals_ = dba_local_triggers(16)
        assert all(t.num_pixels <= 6 for t in locals_)

    def test_global_pixel_count(self):
        globl = dba_global_trigger(28, arm=6)
        assert globl.num_pixels == 4 * 6
