"""Tests for the centralized Fine-Pruning baseline."""

import numpy as np

from repro.baselines.fine_pruning import centralized_fine_pruning


class TestCentralizedFinePruning:
    def test_runs_and_reports(self, tiny_cnn, tiny_dataset, rng):
        from tests.conftest import train_tiny

        train_tiny(tiny_cnn, tiny_dataset, epochs=4)
        result = centralized_fine_pruning(
            tiny_cnn, tiny_dataset, fine_tune_epochs=1, rng=rng
        )
        assert result.num_pruned >= 0
        assert 0.0 <= result.baseline_accuracy <= 1.0

    def test_accuracy_not_destroyed(self, tiny_cnn, tiny_dataset, rng):
        from tests.conftest import train_tiny

        train_tiny(tiny_cnn, tiny_dataset, epochs=6)

        def accuracy():
            logits = tiny_cnn(tiny_dataset.images)
            return float((logits.argmax(1) == tiny_dataset.labels).mean())

        before = accuracy()
        centralized_fine_pruning(
            tiny_cnn,
            tiny_dataset,
            accuracy_drop_threshold=0.02,
            fine_tune_epochs=2,
            rng=rng,
        )
        # central fine-tuning on the same clean data should roughly
        # restore (often improve) accuracy
        assert accuracy() >= before - 0.1

    def test_pruned_channels_stay_dead_after_fine_tune(
        self, tiny_cnn, tiny_dataset, rng
    ):
        centralized_fine_pruning(
            tiny_cnn,
            tiny_dataset,
            accuracy_drop_threshold=0.5,  # prune aggressively
            fine_tune_epochs=1,
            rng=rng,
        )
        layer = tiny_cnn.last_conv()
        dead = ~layer.out_mask
        if dead.any():
            assert (layer.weight.data[dead] == 0).all()

    def test_custom_layer(self, tiny_cnn, tiny_dataset, rng):
        first = tiny_cnn.conv_layers()[0]
        result = centralized_fine_pruning(
            tiny_cnn, tiny_dataset, layer=first, fine_tune_epochs=1, rng=rng
        )
        assert result.num_pruned <= first.out_channels
