"""Tests for the Neural Cleanse baseline."""

import numpy as np
import pytest

from repro.baselines.neural_cleanse import (
    NeuralCleanse,
    ReconstructedTrigger,
    anomaly_indices,
    detect_backdoor_labels,
    reconstruct_trigger,
    unlearn_trigger,
)
from repro.data.dataset import Dataset


class TestReconstructedTrigger:
    def test_apply_blends(self, rng):
        mask = np.zeros((4, 4))
        mask[0, 0] = 1.0
        pattern = np.ones((1, 4, 4))
        trigger = ReconstructedTrigger(3, mask, pattern)
        images = np.zeros((2, 1, 4, 4))
        out = trigger.apply(images)
        assert out[0, 0, 0, 0] == pytest.approx(1.0)
        assert out[0, 0, 1, 1] == pytest.approx(0.0)

    def test_mask_norm(self):
        mask = np.full((3, 3), 0.5)
        trigger = ReconstructedTrigger(0, mask, np.zeros((1, 3, 3)))
        assert trigger.mask_norm == pytest.approx(4.5)


class TestAnomalyIndices:
    def test_outlier_flagged_negative(self):
        norms = np.array([10.0, 11.0, 9.5, 10.5, 1.0])
        indices = anomaly_indices(norms)
        assert indices[-1] < -2.0
        assert abs(indices[0]) < 2.0

    def test_constant_norms_zero(self):
        indices = anomaly_indices(np.full(5, 7.0))
        np.testing.assert_array_equal(indices, 0.0)

    def test_detect_backdoor_labels(self):
        triggers = [
            ReconstructedTrigger(i, np.full((3, 3), 1.0), np.zeros((1, 3, 3)))
            for i in range(4)
        ]
        triggers.append(
            ReconstructedTrigger(4, np.full((3, 3), 0.01), np.zeros((1, 3, 3)))
        )
        # add mild variation so MAD is nonzero
        triggers[1].mask[0, 0] = 0.9
        triggers[2].mask[0, 0] = 1.1
        flagged = detect_backdoor_labels(triggers, threshold=2.0)
        assert flagged == [4]


class TestReconstructTrigger:
    def test_drives_predictions_to_target(self, tiny_cnn, tiny_dataset, rng):
        """On a trained model, the optimized trigger should push most
        inputs toward the target label."""
        from tests.conftest import train_tiny

        train_tiny(tiny_cnn, tiny_dataset, epochs=6)
        target = 2
        trigger = reconstruct_trigger(
            tiny_cnn, tiny_dataset, target, steps=60, lr=0.2, l1_coef=0.001, rng=rng
        )
        stamped = trigger.apply(tiny_dataset.images)
        predictions = tiny_cnn(stamped).argmax(axis=1)
        assert (predictions == target).mean() > 0.5

    def test_mask_in_unit_range(self, tiny_cnn, tiny_dataset, rng):
        trigger = reconstruct_trigger(
            tiny_cnn, tiny_dataset, 0, steps=5, rng=rng
        )
        assert trigger.mask.min() >= 0.0 and trigger.mask.max() <= 1.0
        assert trigger.pattern.min() >= 0.0 and trigger.pattern.max() <= 1.0

    def test_model_parameters_untouched(self, tiny_cnn, tiny_dataset, rng):
        before = tiny_cnn.flat_parameters()
        reconstruct_trigger(tiny_cnn, tiny_dataset, 1, steps=5, rng=rng)
        np.testing.assert_array_equal(tiny_cnn.flat_parameters(), before)

    def test_empty_dataset_rejected(self, tiny_cnn, rng):
        empty = Dataset(np.zeros((0, 1, 8, 8)), np.zeros(0, dtype=int))
        with pytest.raises(ValueError, match="need data"):
            reconstruct_trigger(tiny_cnn, empty, 0, rng=rng)


class TestUnlearnAndRun:
    def test_unlearn_changes_model(self, tiny_cnn, tiny_dataset, rng):
        trigger = ReconstructedTrigger(
            0, np.full((8, 8), 0.1), np.zeros((1, 8, 8))
        )
        before = tiny_cnn.flat_parameters()
        unlearn_trigger(tiny_cnn, tiny_dataset, trigger, epochs=1, rng=rng)
        assert not np.allclose(tiny_cnn.flat_parameters(), before)

    def test_invalid_stamp_fraction(self, tiny_cnn, tiny_dataset, rng):
        trigger = ReconstructedTrigger(0, np.zeros((8, 8)), np.zeros((1, 8, 8)))
        with pytest.raises(ValueError):
            unlearn_trigger(
                tiny_cnn, tiny_dataset, trigger, stamp_fraction=0.0, rng=rng
            )

    def test_full_run_flags_at_least_one_label(self, tiny_cnn, tiny_dataset, rng):
        cleanse = NeuralCleanse(steps=5, unlearn_epochs=1, rng=rng)
        flagged = cleanse.run(tiny_cnn, tiny_dataset, num_classes=5)
        assert len(flagged) >= 1
        assert all(0 <= label < 5 for label in flagged)
