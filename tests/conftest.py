"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.data.dataset import Dataset


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_images(rng) -> np.ndarray:
    """A small NCHW image batch."""
    return rng.random((6, 1, 8, 8))


@pytest.fixture
def tiny_dataset(rng) -> Dataset:
    """60 random 8x8 grayscale images over 5 classes."""
    images = rng.random((60, 1, 8, 8))
    labels = np.repeat(np.arange(5), 12)
    return Dataset(images, labels)


@pytest.fixture
def tiny_cnn(rng) -> nn.Sequential:
    """A minimal conv net for 8x8 single-channel inputs, 5 classes."""
    return nn.Sequential(
        nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(4, 6, kernel_size=3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(6 * 2 * 2, 5, rng=rng),
    )


def train_tiny(model, dataset, epochs=8, lr=0.1, seed=0):
    """Quickly fit a tiny model to a tiny dataset (shared helper)."""
    train_rng = np.random.default_rng(seed)
    loss_fn = nn.CrossEntropyLoss()
    optimizer = nn.SGD(model.parameters(), lr=lr, momentum=0.9)
    from repro.data.dataset import DataLoader

    loader = DataLoader(dataset, batch_size=16, shuffle=True, rng=train_rng)
    for _ in range(epochs):
        for images, labels in loader:
            loss_fn(model(images), labels)
            optimizer.zero_grad()
            model.backward(loss_fn.backward())
            optimizer.step()
    return model
