"""Tests for Dataset and DataLoader."""

import numpy as np
import pytest

from repro.data.dataset import DataLoader, Dataset, train_test_split


class TestDataset:
    def test_validation(self, rng):
        with pytest.raises(ValueError, match="NCHW"):
            Dataset(rng.random((3, 8, 8)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError, match="labels shape"):
            Dataset(rng.random((3, 1, 8, 8)), np.zeros(4, dtype=int))

    def test_len_and_properties(self, tiny_dataset):
        assert len(tiny_dataset) == 60
        assert tiny_dataset.num_channels == 1
        assert tiny_dataset.image_size == 8
        assert tiny_dataset.num_classes == 5

    def test_subset_copies(self, tiny_dataset):
        sub = tiny_dataset.subset(np.array([0, 1]))
        sub.images[...] = -1.0
        assert (tiny_dataset.images[0] != -1.0).any()

    def test_with_label(self, tiny_dataset):
        sub = tiny_dataset.with_label(2)
        assert (sub.labels == 2).all()
        assert len(sub) == 12

    def test_without_label(self, tiny_dataset):
        sub = tiny_dataset.without_label(2)
        assert (sub.labels != 2).all()
        assert len(sub) == 48

    def test_concat(self, tiny_dataset):
        merged = Dataset.concat([tiny_dataset, tiny_dataset])
        assert len(merged) == 120

    def test_concat_empty_list(self):
        with pytest.raises(ValueError):
            Dataset.concat([])

    def test_shuffled_is_permutation(self, tiny_dataset, rng):
        shuffled = tiny_dataset.shuffled(rng)
        assert sorted(shuffled.labels.tolist()) == sorted(tiny_dataset.labels.tolist())
        assert not np.array_equal(shuffled.labels, tiny_dataset.labels)

    def test_class_counts(self, tiny_dataset):
        np.testing.assert_array_equal(tiny_dataset.class_counts(), [12] * 5)


class TestDataLoader:
    def test_batches_cover_everything(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=16)
        total = sum(len(labels) for _, labels in loader)
        assert total == 60

    def test_final_partial_batch(self, tiny_dataset):
        sizes = [len(labels) for _, labels in DataLoader(tiny_dataset, batch_size=16)]
        assert sizes == [16, 16, 16, 12]

    def test_len(self, tiny_dataset):
        assert len(DataLoader(tiny_dataset, batch_size=16)) == 4

    def test_shuffle_requires_rng(self, tiny_dataset):
        with pytest.raises(ValueError, match="requires an rng"):
            DataLoader(tiny_dataset, batch_size=8, shuffle=True)

    def test_shuffle_changes_order_between_epochs(self, tiny_dataset, rng):
        loader = DataLoader(tiny_dataset, batch_size=60, shuffle=True, rng=rng)
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_no_shuffle_preserves_order(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=60)
        _, labels = next(iter(loader))
        np.testing.assert_array_equal(labels, tiny_dataset.labels)

    def test_invalid_batch_size(self, tiny_dataset):
        with pytest.raises(ValueError):
            DataLoader(tiny_dataset, batch_size=0)


class TestTrainTestSplit:
    def test_sizes(self, tiny_dataset, rng):
        train, test = train_test_split(tiny_dataset, 0.25, rng)
        assert len(train) == 45
        assert len(test) == 15

    def test_disjoint_and_complete(self, rng):
        images = np.arange(20, dtype=float).reshape(20, 1, 1, 1)
        ds = Dataset(images, np.zeros(20, dtype=int))
        train, test = train_test_split(ds, 0.3, rng)
        seen = sorted(train.images.ravel().tolist() + test.images.ravel().tolist())
        assert seen == list(range(20))

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5])
    def test_invalid_fraction(self, tiny_dataset, rng, fraction):
        with pytest.raises(ValueError):
            train_test_split(tiny_dataset, fraction, rng)
