"""Tests for client data partitioning, incl. hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset
from repro.data.partition import dirichlet_partition, iid_partition, k_label_partition


def make_labeled_dataset(num_samples, num_classes, seed=0):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, num_samples)
    # labels must be dense 0..C-1 for num_classes inference
    labels[:num_classes] = np.arange(num_classes)
    images = rng.random((num_samples, 1, 4, 4))
    return Dataset(images, labels)


class TestIIDPartition:
    def test_covers_all_samples(self, rng):
        ds = make_labeled_dataset(100, 10)
        parts = iid_partition(ds, 7, rng)
        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(combined, np.arange(100))

    def test_near_equal_sizes(self, rng):
        ds = make_labeled_dataset(100, 10)
        sizes = [len(p) for p in iid_partition(ds, 7, rng)]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_clients(self, rng):
        ds = make_labeled_dataset(10, 2)
        with pytest.raises(ValueError):
            iid_partition(ds, 0, rng)


class TestKLabelPartition:
    @given(
        num_clients=st.integers(4, 12),
        labels_per_client=st.integers(1, 10),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=30, deadline=None)
    def test_partition_invariants(self, num_clients, labels_per_client, seed):
        """Disjoint, complete, and each client holds <= K labels."""
        num_classes = 10
        if num_clients * labels_per_client < num_classes:
            return  # builder rejects this; covered below
        ds = make_labeled_dataset(200, num_classes, seed=seed)
        rng = np.random.default_rng(seed)
        parts = k_label_partition(ds, num_clients, labels_per_client, rng)

        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(combined, np.arange(200))

        for part in parts:
            held_labels = set(ds.labels[part].tolist())
            # a client may receive one extra patched label, never more
            assert len(held_labels) <= labels_per_client + 1

    def test_insufficient_coverage_rejected(self, rng):
        ds = make_labeled_dataset(50, 10)
        with pytest.raises(ValueError, match="cannot cover"):
            k_label_partition(ds, 3, 2, rng)

    def test_k_equals_classes_is_iid_like(self, rng):
        # enough samples that every label splits non-emptily across holders
        ds = make_labeled_dataset(500, 10)
        parts = k_label_partition(ds, 5, 10, rng)
        for part in parts:
            assert len(set(ds.labels[part].tolist())) == 10

    def test_invalid_k(self, rng):
        ds = make_labeled_dataset(50, 10)
        with pytest.raises(ValueError, match="labels_per_client"):
            k_label_partition(ds, 5, 0, rng)
        with pytest.raises(ValueError, match="labels_per_client"):
            k_label_partition(ds, 5, 11, rng)

    def test_three_label_distribution_shape(self, rng):
        """The paper's 10-client 3-label configuration: every class held."""
        ds = make_labeled_dataset(500, 10)
        parts = k_label_partition(ds, 10, 3, rng)
        all_held = set()
        for part in parts:
            all_held |= set(ds.labels[part].tolist())
        assert all_held == set(range(10))


class TestDirichletPartition:
    def test_covers_all_samples(self, rng):
        ds = make_labeled_dataset(300, 10)
        parts = dirichlet_partition(ds, 8, alpha=0.5, rng=rng)
        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(combined, np.arange(300))

    def test_small_alpha_concentrates(self):
        """alpha = 0.05 should give much more skew than alpha = 100."""
        ds = make_labeled_dataset(1000, 10, seed=3)

        def skew(alpha, seed):
            parts = dirichlet_partition(ds, 10, alpha, np.random.default_rng(seed))
            counts = np.array(
                [np.bincount(ds.labels[p], minlength=10) for p in parts], dtype=float
            )
            shares = counts / np.maximum(counts.sum(axis=1, keepdims=True), 1)
            return float(shares.max(axis=1).mean())  # 1.0 = single-label clients

        assert skew(0.05, 1) > skew(100.0, 1) + 0.2

    def test_invalid_alpha(self, rng):
        ds = make_labeled_dataset(50, 5)
        with pytest.raises(ValueError):
            dirichlet_partition(ds, 5, alpha=0.0, rng=rng)
