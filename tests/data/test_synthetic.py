"""Tests for the synthetic dataset generators and glyph primitives."""

import numpy as np
import pytest

from repro.data import glyphs
from repro.data.synthetic import (
    CIFAR_SPEC,
    FASHION_SPEC,
    MNIST_SPEC,
    make_dataset,
    synthetic_cifar,
    synthetic_fashion,
    synthetic_mnist,
)


class TestGlyphs:
    def test_blank_canvas(self):
        canvas = glyphs.blank_canvas(5, 7)
        assert canvas.shape == (5, 7)
        assert (canvas == 0).all()

    def test_disc_center_is_bright(self):
        canvas = glyphs.blank_canvas(9, 9)
        glyphs.draw_disc(canvas, 4, 4, 3)
        assert canvas[4, 4] == pytest.approx(1.0)
        assert canvas[0, 0] == 0.0

    def test_ring_hollow_center(self):
        canvas = glyphs.blank_canvas(15, 15)
        glyphs.draw_ring(canvas, 7, 7, 5)
        assert canvas[7, 7] == 0.0
        assert canvas[7, 12] == pytest.approx(1.0)  # on the ring

    def test_rectangle(self):
        canvas = glyphs.blank_canvas(10, 10)
        glyphs.draw_rectangle(canvas, 2, 2, 7, 7)
        assert canvas[4, 4] == pytest.approx(1.0)
        assert canvas[9, 9] == 0.0

    def test_stroke_endpoints(self):
        canvas = glyphs.blank_canvas(10, 10)
        glyphs.draw_stroke(canvas, 1, 1, 8, 8, thickness=1.5)
        assert canvas[1, 1] > 0.5
        assert canvas[8, 8] > 0.5
        assert canvas[1, 8] == 0.0

    def test_degenerate_stroke_is_dot(self):
        canvas = glyphs.blank_canvas(7, 7)
        glyphs.draw_stroke(canvas, 3, 3, 3, 3, thickness=2.0)
        assert canvas[3, 3] > 0.5

    def test_checker_alternates(self):
        canvas = glyphs.blank_canvas(4, 4)
        glyphs.draw_checker(canvas, period=1)
        assert canvas[0, 0] != canvas[0, 1]
        assert canvas[0, 0] == canvas[1, 1]

    def test_checker_invalid_period(self):
        with pytest.raises(ValueError):
            glyphs.draw_checker(glyphs.blank_canvas(4, 4), period=0)

    def test_gradient_spans_unit_range(self):
        canvas = glyphs.blank_canvas(8, 8)
        glyphs.draw_gradient(canvas, angle=0.0)
        assert canvas.min() == pytest.approx(0.0)
        assert canvas.max() == pytest.approx(1.0)

    def test_shapes_union_not_sum(self):
        canvas = glyphs.blank_canvas(9, 9)
        glyphs.draw_disc(canvas, 4, 4, 2)
        glyphs.draw_disc(canvas, 4, 4, 2)
        assert canvas.max() <= 1.0


@pytest.mark.parametrize(
    "builder,spec",
    [
        (synthetic_mnist, MNIST_SPEC),
        (synthetic_fashion, FASHION_SPEC),
        (synthetic_cifar, CIFAR_SPEC),
    ],
)
class TestGenerators:
    def test_shapes_and_range(self, builder, spec):
        ds = builder(30, seed=1)
        assert ds.images.shape == (30, spec.num_channels, spec.image_size, spec.image_size)
        assert ds.images.min() >= 0.0
        assert ds.images.max() <= 1.0

    def test_deterministic(self, builder, spec):
        a = builder(20, seed=9)
        b = builder(20, seed=9)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_seeds_differ(self, builder, spec):
        a = builder(20, seed=1)
        b = builder(20, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_all_classes_present(self, builder, spec):
        ds = builder(300, seed=4)
        assert set(ds.labels.tolist()) == set(range(spec.num_classes))


class TestLearnability:
    def test_classes_are_visually_distinct(self):
        """Within-class image distance should be well below between-class.

        This is the minimum statistical requirement for a CNN to learn
        the task — a weak but fast proxy for trainability.
        """
        ds = synthetic_mnist(400, seed=11)
        means = np.stack(
            [ds.images[ds.labels == c].mean(axis=0).ravel() for c in range(10)]
        )
        within = []
        for c in range(10):
            cls = ds.images[ds.labels == c].reshape(-1, means.shape[1])
            within.append(np.linalg.norm(cls - means[c], axis=1).mean())
        between = np.linalg.norm(means[:, None] - means[None, :], axis=2)
        between = between[between > 0].mean()
        assert between > np.mean(within) * 0.5

    def test_corner_is_dark_for_trigger(self):
        """The BadNets corner pixels must be background on clean images."""
        ds = synthetic_mnist(100, seed=2)
        corner = ds.images[:, :, :4, :4]
        assert corner.mean() < 0.1


class TestMakeDataset:
    def test_lookup(self):
        ds, spec = make_dataset("mnist", 10, seed=0)
        assert len(ds) == 10
        assert spec.name == MNIST_SPEC.name
        assert spec.image_size == MNIST_SPEC.image_size

    def test_image_size_override(self):
        ds, spec = make_dataset("mnist", 5, seed=0, image_size=16)
        assert spec.image_size == 16
        assert ds.images.shape[-1] == 16

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            make_dataset("imagenet", 10, seed=0)
