"""Tests for input transforms."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.transforms import (
    normalize_unit_range,
    random_horizontal_flip,
    random_shift,
    standardize,
)


class TestNormalizeUnitRange:
    def test_clips(self):
        out = normalize_unit_range(np.array([-0.5, 0.3, 1.7]))
        np.testing.assert_array_equal(out, [0.0, 0.3, 1.0])


class TestStandardize:
    def test_zero_mean_unit_std(self, rng):
        images = rng.normal(3.0, 2.0, (50, 1, 4, 4))
        out, mean, std = standardize(images)
        assert out.mean() == pytest.approx(0.0, abs=1e-6)
        assert out.std() == pytest.approx(1.0, abs=1e-6)

    def test_reuse_train_statistics(self, rng):
        train = rng.normal(3.0, 2.0, (50, 1, 4, 4))
        test = rng.normal(3.0, 2.0, (20, 1, 4, 4))
        _, mean, std = standardize(train)
        out, mean2, std2 = standardize(test, mean, std)
        assert (mean2, std2) == (mean, std)
        # test stats close to but not exactly 0/1 (different sample)
        assert abs(out.mean()) < 0.5

    def test_zero_std_rejected(self):
        with pytest.raises(ValueError):
            standardize(np.ones((2, 1, 2, 2)), mean=0.0, std=0.0)


class TestRandomShift:
    def test_zero_shift_identity(self, tiny_dataset, rng):
        out = random_shift(tiny_dataset, 0, rng)
        assert out is tiny_dataset

    def test_preserves_shape_and_labels(self, tiny_dataset, rng):
        out = random_shift(tiny_dataset, 2, rng)
        assert out.images.shape == tiny_dataset.images.shape
        np.testing.assert_array_equal(out.labels, tiny_dataset.labels)

    def test_mass_preserved_up_to_cropping(self, tiny_dataset, rng):
        out = random_shift(tiny_dataset, 1, rng)
        # shifting can only remove mass (cropped at borders), never add
        assert out.images.sum() <= tiny_dataset.images.sum() + 1e-6

    def test_negative_rejected(self, tiny_dataset, rng):
        with pytest.raises(ValueError):
            random_shift(tiny_dataset, -1, rng)


class TestRandomHorizontalFlip:
    def test_probability_one_flips_all(self, rng):
        images = np.zeros((4, 1, 2, 3))
        images[:, :, :, 0] = 1.0  # left column bright
        ds = Dataset(images, np.zeros(4, dtype=int))
        out = random_horizontal_flip(ds, 1.0, rng)
        assert (out.images[:, :, :, -1] == 1.0).all()
        assert (out.images[:, :, :, 0] == 0.0).all()

    def test_probability_zero_identity(self, tiny_dataset, rng):
        out = random_horizontal_flip(tiny_dataset, 0.0, rng)
        np.testing.assert_array_equal(out.images, tiny_dataset.images)

    def test_invalid_probability(self, tiny_dataset, rng):
        with pytest.raises(ValueError):
            random_horizontal_flip(tiny_dataset, 1.5, rng)
