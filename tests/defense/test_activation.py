"""Tests for per-channel activation profiling."""

import numpy as np
import pytest

from repro import nn
from repro.data.dataset import Dataset
from repro.defense.activation import channel_count, mean_channel_activations


class TestChannelCount:
    def test_conv(self, rng):
        assert channel_count(nn.Conv2d(1, 7, 3, rng=rng)) == 7

    def test_linear(self, rng):
        assert channel_count(nn.Linear(4, 9, rng=rng)) == 9

    def test_unsupported(self):
        with pytest.raises(TypeError, match="no prunable channels"):
            channel_count(nn.ReLU())


class TestMeanChannelActivations:
    def test_shape(self, tiny_cnn, tiny_dataset):
        layer = tiny_cnn.last_conv()
        acts = mean_channel_activations(tiny_cnn, layer, tiny_dataset)
        assert acts.shape == (layer.out_channels,)

    def test_post_relu_nonnegative(self, tiny_cnn, tiny_dataset):
        acts = mean_channel_activations(
            tiny_cnn, tiny_cnn.last_conv(), tiny_dataset, post_relu=True
        )
        assert (acts >= 0).all()

    def test_raw_can_be_negative(self, tiny_cnn, tiny_dataset):
        acts = mean_channel_activations(
            tiny_cnn, tiny_cnn.last_conv(), tiny_dataset, post_relu=False
        )
        # kaiming-init conv over random data: some channel means negative
        assert (acts < 0).any()

    def test_empty_dataset_returns_zeros(self, tiny_cnn, rng):
        empty = Dataset(np.zeros((0, 1, 8, 8)), np.zeros(0, dtype=int))
        acts = mean_channel_activations(tiny_cnn, tiny_cnn.last_conv(), empty)
        np.testing.assert_array_equal(acts, 0.0)

    def test_batch_size_invariance(self, tiny_cnn, tiny_dataset):
        layer = tiny_cnn.last_conv()
        a = mean_channel_activations(tiny_cnn, layer, tiny_dataset, batch_size=7)
        b = mean_channel_activations(tiny_cnn, layer, tiny_dataset, batch_size=60)
        np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_restores_model_modes(self, tiny_cnn, tiny_dataset):
        tiny_cnn.train()
        layer = tiny_cnn.last_conv()
        mean_channel_activations(tiny_cnn, layer, tiny_dataset)
        assert tiny_cnn.training
        assert not layer._recording
        assert layer.last_activation is None

    def test_constant_zero_input_gives_bias_activation(self, rng):
        model = nn.Sequential(nn.Conv2d(1, 3, 3, padding=1, rng=rng))
        conv = model[0]
        conv.bias.data[...] = [1.0, -1.0, 0.5]
        data = Dataset(np.zeros((4, 1, 6, 6)), np.zeros(4, dtype=int))
        acts = mean_channel_activations(model, conv, data, post_relu=True)
        np.testing.assert_allclose(acts, [1.0, 0.0, 0.5], atol=1e-6)

    def test_linear_layer_profiling(self, rng):
        model = nn.Sequential(nn.Flatten(), nn.Linear(16, 4, rng=rng))
        data = Dataset(np.abs(rng.random((10, 1, 4, 4))), np.zeros(10, dtype=int))
        acts = mean_channel_activations(model, model[1], data)
        assert acts.shape == (4,)

    def test_layer_not_in_model_raises(self, tiny_cnn, tiny_dataset, rng):
        orphan = nn.Conv2d(1, 2, 3, rng=rng)
        with pytest.raises(RuntimeError, match="no activation"):
            mean_channel_activations(tiny_cnn, orphan, tiny_dataset)
