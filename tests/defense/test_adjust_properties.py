"""Hypothesis property tests for the adjust-extreme-weights stage."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.defense.adjust_weights import zero_extreme_weights


def make_layer(seed: int, scale: float = 0.1) -> nn.Conv2d:
    rng = np.random.default_rng(seed)
    layer = nn.Conv2d(1, 4, kernel_size=3, rng=rng)
    layer.weight.data[...] = rng.normal(0.0, scale, layer.weight.shape)
    return layer


class TestZeroExtremeProperties:
    @given(
        seed=st.integers(0, 300),
        deltas=st.lists(
            st.floats(0.5, 4.0), min_size=2, max_size=5, unique=True
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_decreasing_delta_monotone_zeroing(self, seed, deltas):
        """Sweeping delta downward with fixed stats only ever zeroes more."""
        layer = make_layer(seed)
        mu = float(layer.weight.data.mean())
        sigma = float(layer.weight.data.std())
        zero_counts = []
        for delta in sorted(deltas, reverse=True):
            zero_extreme_weights(layer, delta, mu, sigma)
            zero_counts.append(int((layer.weight.data == 0.0).sum()))
        assert zero_counts == sorted(zero_counts)

    @given(seed=st.integers(0, 300), delta=st.floats(0.5, 4.0))
    @settings(max_examples=25, deadline=None)
    def test_survivors_within_band(self, seed, delta):
        """After zeroing, every nonzero weight lies inside mu ± delta sigma."""
        layer = make_layer(seed)
        mu = float(layer.weight.data.mean())
        sigma = float(layer.weight.data.std())
        zero_extreme_weights(layer, delta, mu, sigma)
        survivors = layer.weight.data[layer.weight.data != 0.0]
        if survivors.size:
            assert (survivors >= mu - delta * sigma - 1e-9).all()
            assert (survivors <= mu + delta * sigma + 1e-9).all()

    @given(seed=st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_idempotent_at_same_delta(self, seed):
        layer = make_layer(seed)
        mu = float(layer.weight.data.mean())
        sigma = float(layer.weight.data.std())
        first = zero_extreme_weights(layer, 1.5, mu, sigma)
        second = zero_extreme_weights(layer, 1.5, mu, sigma)
        assert second == 0
        assert first >= 0
