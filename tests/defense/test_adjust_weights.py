"""Tests for the adjust-extreme-weights stage."""

import numpy as np
import pytest

from repro import nn
from repro.defense.adjust_weights import (
    adjust_extreme_weights,
    clip_inputs,
    zero_extreme_weights,
)


@pytest.fixture
def conv_layer(rng):
    layer = nn.Conv2d(1, 4, kernel_size=3, rng=rng)
    layer.weight.data[...] = rng.normal(0.0, 0.1, layer.weight.shape)
    return layer


class TestZeroExtremeWeights:
    def test_zeroes_outliers(self, conv_layer):
        conv_layer.weight.data[0, 0, 0, 0] = 10.0
        conv_layer.weight.data[1, 0, 1, 1] = -10.0
        zeroed = zero_extreme_weights(conv_layer, delta=3.0)
        assert zeroed >= 2
        assert conv_layer.weight.data[0, 0, 0, 0] == 0.0
        assert conv_layer.weight.data[1, 0, 1, 1] == 0.0

    def test_no_outliers_no_change(self, conv_layer):
        before = conv_layer.weight.data.copy()
        zeroed = zero_extreme_weights(conv_layer, delta=50.0)
        assert zeroed == 0
        np.testing.assert_array_equal(conv_layer.weight.data, before)

    def test_counts_only_newly_zeroed(self, conv_layer):
        conv_layer.weight.data[0, 0, 0, 0] = 10.0
        mu, sigma = 0.0, 0.1
        first = zero_extreme_weights(conv_layer, 3.0, mu, sigma)
        second = zero_extreme_weights(conv_layer, 3.0, mu, sigma)
        assert first >= 1
        assert second == 0  # already-zero weights are not re-counted

    def test_explicit_stats_override(self, conv_layer):
        # with mu=0, sigma=0.001 nearly everything is extreme
        zeroed = zero_extreme_weights(conv_layer, 1.0, mu=0.0, sigma=0.001)
        assert zeroed > conv_layer.weight.size * 0.5

    def test_excludes_masked_channels_from_stats(self, conv_layer):
        conv_layer.out_mask[0] = False
        conv_layer.apply_mask()  # channel 0 weights now structural zeros
        live_before = conv_layer.weight.data[1:].copy()
        zero_extreme_weights(conv_layer, delta=10.0)
        np.testing.assert_array_equal(conv_layer.weight.data[1:], live_before)

    def test_invalid_delta(self, conv_layer):
        with pytest.raises(ValueError):
            zero_extreme_weights(conv_layer, delta=0.0)


class TestAdjustExtremeWeights:
    def _model_with_planted_extremes(self, rng):
        model = nn.Sequential(
            nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Flatten(),
            nn.Linear(4 * 4 * 4, 2, rng=rng),
        )
        conv = model[0]
        conv.weight.data[...] = rng.normal(0, 0.05, conv.weight.shape)
        conv.weight.data[0, 0, 0, 0] = 5.0  # planted extreme
        return model

    def test_sweep_removes_planted_extreme(self, rng):
        model = self._model_with_planted_extremes(rng)
        result = adjust_extreme_weights(
            model, lambda m: 0.9, accuracy_floor_drop=0.05, delta_start=4.0
        )
        assert model[0].weight.data[0, 0, 0, 0] == 0.0
        assert result.num_zeroed >= 1
        assert result.final_delta <= 4.0

    def test_rolls_back_on_accuracy_drop(self, rng):
        model = self._model_with_planted_extremes(rng)
        calls = {"n": 0}

        def oracle(m):
            calls["n"] += 1
            return 0.9 if calls["n"] <= 2 else 0.0  # collapse at 2nd delta step

        result = adjust_extreme_weights(
            model, oracle, accuracy_floor_drop=0.05, delta_start=4.0, delta_step=0.5
        )
        # trace includes the rejected step; accepted delta is the first one
        assert result.final_delta == pytest.approx(4.0)
        assert len(result.trace) == 2

    def test_trace_records_deltas(self, rng):
        model = self._model_with_planted_extremes(rng)
        result = adjust_extreme_weights(
            model,
            lambda m: 1.0,
            delta_start=2.0,
            delta_step=0.5,
            delta_min=1.0,
        )
        deltas = [t[0] for t in result.trace]
        assert deltas == pytest.approx([2.0, 1.5, 1.0])

    def test_defaults_to_last_conv(self, tiny_cnn):
        result = adjust_extreme_weights(tiny_cnn, lambda m: 1.0)
        assert result.baseline_accuracy == 1.0

    def test_invalid_schedule(self, tiny_cnn):
        with pytest.raises(ValueError, match="delta_start"):
            adjust_extreme_weights(tiny_cnn, lambda m: 1.0, delta_start=0.1, delta_min=1.0)
        with pytest.raises(ValueError, match="delta_step"):
            adjust_extreme_weights(tiny_cnn, lambda m: 1.0, delta_step=0.0)


class TestClipInputs:
    def test_clips(self):
        clipped = clip_inputs(np.array([-1.0, 0.5, 2.0]))
        np.testing.assert_array_equal(clipped, [0.0, 0.5, 1.0])

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            clip_inputs(np.zeros(3), low=1.0, high=0.0)
