"""Tests for the backdoor-localization diagnostics."""

import numpy as np
import pytest

from repro.attacks.poison import BackdoorTask, poison_dataset
from repro.attacks.triggers import pixel_pattern
from repro.defense.diagnostics import (
    channel_ablation_impact,
    entanglement_report,
    trigger_activation_gap,
)


@pytest.fixture
def task():
    return BackdoorTask(pixel_pattern(5, 8), victim_label=4, attack_label=1)


@pytest.fixture
def backdoored(tiny_cnn, tiny_dataset, task, rng):
    """A tiny model trained on poisoned data."""
    from tests.conftest import train_tiny

    poisoned = poison_dataset(tiny_dataset, task, rng=rng)
    train_tiny(tiny_cnn, poisoned, epochs=8)
    return tiny_cnn


class TestChannelAblationImpact:
    def test_one_row_per_live_channel(self, backdoored, tiny_dataset, task):
        layer = backdoored.last_conv()
        rows = channel_ablation_impact(backdoored, layer, task, tiny_dataset)
        assert len(rows) == layer.out_channels

    def test_skips_dead_channels(self, backdoored, tiny_dataset, task):
        layer = backdoored.last_conv()
        layer.out_mask[0] = False
        rows = channel_ablation_impact(backdoored, layer, task, tiny_dataset)
        assert len(rows) == layer.out_channels - 1
        assert all(r["channel"] != 0 for r in rows)
        layer.out_mask[0] = True

    def test_model_restored_after(self, backdoored, tiny_dataset, task, rng):
        layer = backdoored.last_conv()
        before = backdoored.flat_parameters()
        mask_before = layer.out_mask.copy()
        channel_ablation_impact(backdoored, layer, task, tiny_dataset)
        np.testing.assert_array_equal(backdoored.flat_parameters(), before)
        np.testing.assert_array_equal(layer.out_mask, mask_before)

    def test_drops_are_relative(self, backdoored, tiny_dataset, task):
        rows = channel_ablation_impact(
            backdoored, backdoored.last_conv(), task, tiny_dataset
        )
        for row in rows:
            assert -1.0 <= row["ta_drop"] <= 1.0
            assert -1.0 <= row["aa_drop"] <= 1.0


class TestTriggerActivationGap:
    def test_shape(self, backdoored, tiny_dataset, task):
        layer = backdoored.last_conv()
        gap = trigger_activation_gap(backdoored, layer, task, tiny_dataset)
        assert gap.shape == (layer.out_channels,)

    def test_nonzero_for_backdoored_model(self, backdoored, tiny_dataset, task):
        gap = trigger_activation_gap(
            backdoored, backdoored.last_conv(), task, tiny_dataset
        )
        assert np.abs(gap).max() > 1e-4

    def test_missing_victims_rejected(self, backdoored, tiny_dataset, task):
        no_victims = tiny_dataset.without_label(task.victim_label)
        with pytest.raises(ValueError, match="victim"):
            trigger_activation_gap(
                backdoored, backdoored.last_conv(), task, no_victims
            )


class TestEntanglementReport:
    def test_report_fields(self, backdoored, tiny_dataset, task):
        report = entanglement_report(
            backdoored, backdoored.last_conv(), task, tiny_dataset
        )
        assert set(report) == {
            "carrier_channels",
            "carrier_ta_cost",
            "suppression_share",
            "dormancy_rank_of_top_gap",
            "num_channels",
        }
        assert 0.0 <= report["suppression_share"] <= 1.0
        assert 0 <= report["dormancy_rank_of_top_gap"] < report["num_channels"]

    def test_no_carriers_gives_inf_cost(self, tiny_cnn, tiny_dataset, task):
        # untrained model: no single channel carries the (nonexistent) backdoor
        report = entanglement_report(
            tiny_cnn, tiny_cnn.last_conv(), task, tiny_dataset,
            aa_collapse_threshold=1.1,  # impossible threshold
        )
        assert report["carrier_channels"] == []
        assert report["carrier_ta_cost"] == float("inf")
