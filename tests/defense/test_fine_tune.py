"""Tests for federated fine-tuning of the pruned model."""

import numpy as np
import pytest

from repro import nn
from repro.defense.fine_tune import federated_fine_tune
from repro.fl.client import Client, LocalTrainingConfig


def make_clients(dataset, num_clients, rng):
    config = LocalTrainingConfig(lr=0.05, momentum=0.9, batch_size=16, local_epochs=1)
    chunks = np.array_split(rng.permutation(len(dataset)), num_clients)
    return [
        Client(i, dataset.subset(chunk), config, np.random.default_rng(100 + i))
        for i, chunk in enumerate(chunks)
    ]


class TestFederatedFineTune:
    def test_improves_pruned_model(self, tiny_cnn, tiny_dataset, rng):
        from tests.conftest import train_tiny

        train_tiny(tiny_cnn, tiny_dataset, epochs=5)
        # prune half the last conv channels to damage the model
        layer = tiny_cnn.last_conv()
        layer.out_mask[:3] = False
        layer.apply_mask()

        def accuracy(model):
            logits = model(tiny_dataset.images)
            return float((logits.argmax(1) == tiny_dataset.labels).mean())

        before = accuracy(tiny_cnn)
        clients = make_clients(tiny_dataset, 3, rng)
        result = federated_fine_tune(
            tiny_cnn, clients, accuracy, max_rounds=5, patience=5
        )
        assert accuracy(tiny_cnn) >= before
        assert result.rounds_run >= 1

    def test_masks_survive_fine_tuning(self, tiny_cnn, tiny_dataset, rng):
        layer = tiny_cnn.last_conv()
        layer.out_mask[0] = False
        layer.apply_mask()
        clients = make_clients(tiny_dataset, 2, rng)
        federated_fine_tune(tiny_cnn, clients, lambda m: 0.5, max_rounds=2)
        assert not layer.out_mask[0]
        assert (layer.weight.data[0] == 0).all()

    def test_keeps_best_round(self, tiny_cnn, tiny_dataset, rng):
        """The model ends at the best-accuracy round, not the last."""
        clients = make_clients(tiny_dataset, 2, rng)
        accuracies = iter([0.5, 0.9, 0.3, 0.2, 0.1])
        snapshots = []

        def oracle(model):
            acc = next(accuracies, 0.1)
            snapshots.append((acc, model.flat_parameters()))
            return acc

        federated_fine_tune(
            tiny_cnn, clients, oracle, max_rounds=4, patience=2
        )
        best = max(snapshots, key=lambda pair: pair[0])
        np.testing.assert_array_equal(tiny_cnn.flat_parameters(), best[1])

    def test_early_stop_on_plateau(self, tiny_cnn, tiny_dataset, rng):
        clients = make_clients(tiny_dataset, 2, rng)
        result = federated_fine_tune(
            tiny_cnn, clients, lambda m: 0.5, max_rounds=10, patience=2
        )
        assert result.rounds_run == 2  # stopped after `patience` flat rounds

    def test_validation(self, tiny_cnn, tiny_dataset, rng):
        clients = make_clients(tiny_dataset, 2, rng)
        with pytest.raises(ValueError):
            federated_fine_tune(tiny_cnn, clients, lambda m: 1.0, max_rounds=0)
        with pytest.raises(ValueError):
            federated_fine_tune(tiny_cnn, [], lambda m: 1.0)
        with pytest.raises(ValueError, match="min_quorum"):
            federated_fine_tune(tiny_cnn, clients, lambda m: 1.0, min_quorum=0)


class BrokenClient:
    """A fine-tuning participant that drops out or ships garbage."""

    def __init__(self, client_id, behaviour):
        self.client_id = client_id
        self.behaviour = behaviour

    def local_update(self, model, global_params, round_index=None):
        from repro.fl.faults import ClientDropout

        if self.behaviour == "drop":
            raise ClientDropout("gone")
        bad = np.zeros_like(global_params)
        bad[0] = np.inf
        return bad


class TestFineTuneDegradation:
    def test_faulty_clients_skipped_not_fatal(self, tiny_cnn, tiny_dataset, rng):
        clients = make_clients(tiny_dataset, 2, rng)
        clients += [BrokenClient(2, "drop"), BrokenClient(3, "inf")]

        def accuracy(model):
            logits = model(tiny_dataset.images)
            return float((logits.argmax(1) == tiny_dataset.labels).mean())

        result = federated_fine_tune(
            tiny_cnn, clients, accuracy, max_rounds=2, patience=2
        )
        assert np.isfinite(tiny_cnn.flat_parameters()).all()
        assert result.num_dropped == result.rounds_run
        assert result.num_rejected == result.rounds_run
        assert result.skipped_rounds == []

    def test_below_quorum_rounds_leave_model_untouched(
        self, tiny_cnn, tiny_dataset, rng
    ):
        before = tiny_cnn.flat_parameters().copy()
        clients = [BrokenClient(0, "drop"), BrokenClient(1, "inf")]
        result = federated_fine_tune(
            tiny_cnn, clients, lambda m: 0.5, max_rounds=3, patience=3
        )
        assert result.skipped_rounds == list(range(result.rounds_run))
        np.testing.assert_array_equal(tiny_cnn.flat_parameters(), before)
