"""Tests for the full defense pipeline orchestration."""

import numpy as np
import pytest

from repro.defense.pipeline import DefenseConfig, DefensePipeline
from repro.fl.client import Client, LocalTrainingConfig


def make_clients(dataset, num_clients, rng):
    config = LocalTrainingConfig(lr=0.05, momentum=0.5, batch_size=16, local_epochs=1)
    chunks = np.array_split(rng.permutation(len(dataset)), num_clients)
    return [
        Client(i, dataset.subset(chunk), config, np.random.default_rng(50 + i))
        for i, chunk in enumerate(chunks)
    ]


def accuracy_oracle(dataset):
    def oracle(model):
        logits = model(dataset.images)
        return float((logits.argmax(axis=1) == dataset.labels).mean())

    return oracle


class TestDefenseConfig:
    def test_defaults(self):
        config = DefenseConfig()
        assert config.method == "mvp"
        assert config.fine_tune

    def test_invalid_method(self):
        with pytest.raises(ValueError, match="method"):
            DefenseConfig(method="magic")


class TestDefensePipeline:
    def test_requires_clients(self, tiny_cnn):
        with pytest.raises(ValueError, match="at least one client"):
            DefensePipeline([], lambda m: 1.0)

    @pytest.mark.parametrize("method", ["rap", "mvp"])
    def test_global_prune_order_is_permutation(
        self, method, tiny_cnn, tiny_dataset, rng
    ):
        clients = make_clients(tiny_dataset, 3, rng)
        pipeline = DefensePipeline(
            clients, accuracy_oracle(tiny_dataset), DefenseConfig(method=method)
        )
        order = pipeline.global_prune_order(tiny_cnn)
        channels = tiny_cnn.last_conv().out_channels
        np.testing.assert_array_equal(np.sort(order), np.arange(channels))

    def test_run_produces_full_report(self, tiny_cnn, tiny_dataset, rng):
        from tests.conftest import train_tiny

        train_tiny(tiny_cnn, tiny_dataset, epochs=4)
        clients = make_clients(tiny_dataset, 3, rng)
        config = DefenseConfig(fine_tune=True, fine_tune_rounds=2)
        pipeline = DefensePipeline(clients, accuracy_oracle(tiny_dataset), config)
        report = pipeline.run(tiny_cnn)

        assert report.pruning is not None
        assert report.fine_tuning is not None
        assert report.adjusting is not None
        assert set(report.stage_seconds) == {"pruning", "fine_tuning", "adjusting"}
        assert all(v >= 0 for v in report.stage_seconds.values())

    def test_run_without_fine_tune(self, tiny_cnn, tiny_dataset, rng):
        clients = make_clients(tiny_dataset, 2, rng)
        config = DefenseConfig(fine_tune=False)
        pipeline = DefensePipeline(clients, accuracy_oracle(tiny_dataset), config)
        report = pipeline.run(tiny_cnn)
        assert report.fine_tuning is None
        assert "fine_tuning" not in report.stage_seconds

    def test_accuracy_preserved_within_thresholds(self, tiny_cnn, tiny_dataset, rng):
        from tests.conftest import train_tiny

        train_tiny(tiny_cnn, tiny_dataset, epochs=6)
        oracle = accuracy_oracle(tiny_dataset)
        before = oracle(tiny_cnn)
        clients = make_clients(tiny_dataset, 3, rng)
        config = DefenseConfig(
            accuracy_drop_threshold=0.02, aw_floor_drop=0.03, fine_tune=False
        )
        DefensePipeline(clients, oracle, config).run(tiny_cnn)
        after = oracle(tiny_cnn)
        # pruning may drop <= 0.02, AW <= 0.03 more (plus oracle noise)
        assert after >= before - 0.06

    def test_explicit_target_layer(self, tiny_cnn, tiny_dataset, rng):
        clients = make_clients(tiny_dataset, 2, rng)
        first_conv = tiny_cnn.conv_layers()[0]
        pipeline = DefensePipeline(
            clients,
            accuracy_oracle(tiny_dataset),
            DefenseConfig(fine_tune=False),
            layer=first_conv,
        )
        order = pipeline.global_prune_order(tiny_cnn)
        assert order.size == first_conv.out_channels
