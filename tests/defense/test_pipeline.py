"""Tests for the full defense pipeline orchestration."""

import numpy as np
import pytest

from repro.defense.pipeline import DefenseConfig, DefensePipeline
from repro.fl.client import Client, LocalTrainingConfig


def make_clients(dataset, num_clients, rng):
    config = LocalTrainingConfig(lr=0.05, momentum=0.5, batch_size=16, local_epochs=1)
    chunks = np.array_split(rng.permutation(len(dataset)), num_clients)
    return [
        Client(i, dataset.subset(chunk), config, np.random.default_rng(50 + i))
        for i, chunk in enumerate(chunks)
    ]


def accuracy_oracle(dataset):
    def oracle(model):
        logits = model(dataset.images)
        return float((logits.argmax(axis=1) == dataset.labels).mean())

    return oracle


class TestDefenseConfig:
    def test_defaults(self):
        config = DefenseConfig()
        assert config.method == "mvp"
        assert config.fine_tune

    def test_invalid_method(self):
        with pytest.raises(ValueError, match="method"):
            DefenseConfig(method="magic")


class TestDefensePipeline:
    def test_requires_clients(self, tiny_cnn):
        with pytest.raises(ValueError, match="at least one client"):
            DefensePipeline([], lambda m: 1.0)

    @pytest.mark.parametrize("method", ["rap", "mvp"])
    def test_global_prune_order_is_permutation(
        self, method, tiny_cnn, tiny_dataset, rng
    ):
        clients = make_clients(tiny_dataset, 3, rng)
        pipeline = DefensePipeline(
            clients, accuracy_oracle(tiny_dataset), DefenseConfig(method=method)
        )
        order = pipeline.global_prune_order(tiny_cnn)
        channels = tiny_cnn.last_conv().out_channels
        np.testing.assert_array_equal(np.sort(order), np.arange(channels))

    def test_run_produces_full_report(self, tiny_cnn, tiny_dataset, rng):
        from tests.conftest import train_tiny

        train_tiny(tiny_cnn, tiny_dataset, epochs=4)
        clients = make_clients(tiny_dataset, 3, rng)
        config = DefenseConfig(fine_tune=True, fine_tune_rounds=2)
        pipeline = DefensePipeline(clients, accuracy_oracle(tiny_dataset), config)
        report = pipeline.run(tiny_cnn)

        assert report.pruning is not None
        assert report.fine_tuning is not None
        assert report.adjusting is not None
        assert set(report.stage_seconds) == {"pruning", "fine_tuning", "adjusting"}
        assert all(v >= 0 for v in report.stage_seconds.values())

    def test_run_without_fine_tune(self, tiny_cnn, tiny_dataset, rng):
        clients = make_clients(tiny_dataset, 2, rng)
        config = DefenseConfig(fine_tune=False)
        pipeline = DefensePipeline(clients, accuracy_oracle(tiny_dataset), config)
        report = pipeline.run(tiny_cnn)
        assert report.fine_tuning is None
        assert "fine_tuning" not in report.stage_seconds

    def test_accuracy_preserved_within_thresholds(self, tiny_cnn, tiny_dataset, rng):
        from tests.conftest import train_tiny

        train_tiny(tiny_cnn, tiny_dataset, epochs=6)
        oracle = accuracy_oracle(tiny_dataset)
        before = oracle(tiny_cnn)
        clients = make_clients(tiny_dataset, 3, rng)
        config = DefenseConfig(
            accuracy_drop_threshold=0.02, aw_floor_drop=0.03, fine_tune=False
        )
        DefensePipeline(clients, oracle, config).run(tiny_cnn)
        after = oracle(tiny_cnn)
        # pruning may drop <= 0.02, AW <= 0.03 more (plus oracle noise)
        assert after >= before - 0.06

    def test_explicit_target_layer(self, tiny_cnn, tiny_dataset, rng):
        clients = make_clients(tiny_dataset, 2, rng)
        first_conv = tiny_cnn.conv_layers()[0]
        pipeline = DefensePipeline(
            clients,
            accuracy_oracle(tiny_dataset),
            DefenseConfig(fine_tune=False),
            layer=first_conv,
        )
        order = pipeline.global_prune_order(tiny_cnn)
        assert order.size == first_conv.out_channels


class SilentClient(Client):
    """Never delivers a ranking/vote report."""

    def ranking_report(self, model, layer):
        from repro.fl.faults import ClientDropout

        raise ClientDropout(f"client {self.client_id} unreachable")

    def vote_report(self, model, layer, prune_rate):
        return self.ranking_report(model, layer)


class GarbageReportClient(Client):
    """Always reports nonsense (wrong length for both protocols)."""

    def ranking_report(self, model, layer):
        return np.arange(2)

    def vote_report(self, model, layer, prune_rate):
        return np.arange(2)


def make_typed_clients(dataset, rng, types):
    config = LocalTrainingConfig(lr=0.05, momentum=0.5, batch_size=16, local_epochs=1)
    chunks = np.array_split(rng.permutation(len(dataset)), len(types))
    return [
        cls(i, dataset.subset(chunk), config, np.random.default_rng(50 + i))
        for i, (cls, chunk) in enumerate(zip(types, chunks))
    ]


class TestPipelineDegradation:
    @pytest.mark.parametrize("method", ["rap", "mvp"])
    def test_prune_order_survives_dropouts_and_garbage(
        self, method, tiny_cnn, tiny_dataset, rng
    ):
        """Heterogeneous report sets: 2 of 4 clients deliver, order still valid."""
        clients = make_typed_clients(
            tiny_dataset, rng, [Client, SilentClient, GarbageReportClient, Client]
        )
        pipeline = DefensePipeline(
            clients, accuracy_oracle(tiny_dataset), DefenseConfig(method=method)
        )
        order = pipeline.global_prune_order(tiny_cnn)
        channels = tiny_cnn.last_conv().out_channels
        np.testing.assert_array_equal(np.sort(order), np.arange(channels))
        kinds = [kind for kind, _, _ in pipeline.events]
        assert "report_dropout" in kinds
        assert "malformed_report" in kinds

    @pytest.mark.parametrize("method", ["rap", "mvp"])
    def test_repeat_malformed_reports_quarantine(
        self, method, tiny_cnn, tiny_dataset, rng
    ):
        clients = make_typed_clients(
            tiny_dataset, rng, [Client, Client, GarbageReportClient]
        )
        config = DefenseConfig(method=method, max_report_strikes=2)
        pipeline = DefensePipeline(clients, accuracy_oracle(tiny_dataset), config)
        pipeline.global_prune_order(tiny_cnn)
        assert pipeline.quarantined == set()  # one strike so far
        pipeline.global_prune_order(tiny_cnn)
        assert pipeline.quarantined == {2}
        assert ("quarantine", 2, "2 malformed reports") in pipeline.events
        assert [c.client_id for c in pipeline.active_clients()] == [0, 1]

    def test_no_valid_reports_raises(self, tiny_cnn, tiny_dataset, rng):
        clients = make_typed_clients(tiny_dataset, rng, [SilentClient, SilentClient])
        pipeline = DefensePipeline(clients, accuracy_oracle(tiny_dataset))
        with pytest.raises(ValueError, match="well-formed pruning reports"):
            pipeline.global_prune_order(tiny_cnn)

    def test_report_quorum_enforced(self, tiny_cnn, tiny_dataset, rng):
        clients = make_typed_clients(
            tiny_dataset, rng, [Client, SilentClient, SilentClient]
        )
        config = DefenseConfig(min_report_quorum=0.5)
        pipeline = DefensePipeline(clients, accuracy_oracle(tiny_dataset), config)
        with pytest.raises(ValueError, match="quorum"):
            pipeline.global_prune_order(tiny_cnn)

    def test_run_excludes_quarantined_from_fine_tune(
        self, tiny_cnn, tiny_dataset, rng
    ):
        clients = make_typed_clients(
            tiny_dataset, rng, [Client, Client, GarbageReportClient]
        )
        config = DefenseConfig(
            max_report_strikes=1, fine_tune=True, fine_tune_rounds=1
        )
        pipeline = DefensePipeline(clients, accuracy_oracle(tiny_dataset), config)
        report = pipeline.run(tiny_cnn)
        assert pipeline.quarantined == {2}
        assert report.fine_tuning is not None  # ran on the two survivors

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_report_strikes"):
            DefenseConfig(max_report_strikes=0)
        with pytest.raises(ValueError, match="min_report_quorum"):
            DefenseConfig(min_report_quorum=0)
        with pytest.raises(ValueError, match="min_report_quorum"):
            DefenseConfig(min_report_quorum=1.2)
