"""Tests for the server-side pruning loop (Algorithm 1)."""

import numpy as np
import pytest

from repro import nn
from repro.defense.pruning import (
    client_feedback_accuracy,
    prune_by_sequence,
    server_validation_accuracy,
)


class StubAccuracy:
    """Accuracy oracle scripted by remaining live channels."""

    def __init__(self, layer, schedule):
        self.layer = layer
        self.schedule = schedule  # num_pruned -> accuracy

    def __call__(self, model):
        pruned = int((~self.layer.out_mask).sum())
        return self.schedule.get(pruned, 0.0)


@pytest.fixture
def conv_model(rng):
    return nn.Sequential(
        nn.Conv2d(1, 8, kernel_size=3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Flatten(),
        nn.Linear(8 * 4 * 4, 3, rng=rng),
    )


class TestPruneBySequence:
    def test_stops_at_threshold(self, conv_model):
        layer = conv_model[0]
        # accuracy holds for 3 prunes then collapses
        schedule = {0: 0.9, 1: 0.9, 2: 0.895, 3: 0.89, 4: 0.5}
        oracle = StubAccuracy(layer, schedule)
        result = prune_by_sequence(
            conv_model, layer, list(range(8)), oracle, accuracy_drop_threshold=0.02
        )
        assert result.num_pruned == 3
        assert result.stopped_early
        assert (~layer.out_mask).sum() == 3

    def test_undoes_failing_prune(self, conv_model):
        layer = conv_model[0]
        schedule = {0: 0.9, 1: 0.1}
        result = prune_by_sequence(
            conv_model, layer, [5], StubAccuracy(layer, schedule), 0.01
        )
        assert result.num_pruned == 0
        assert layer.out_mask[5]  # restored

    def test_prunes_whole_sequence_when_accuracy_holds(self, conv_model):
        layer = conv_model[0]
        oracle = lambda model: 0.9
        result = prune_by_sequence(
            conv_model, layer, [0, 1, 2], oracle, accuracy_drop_threshold=0.05
        )
        assert result.pruned_channels == [0, 1, 2]
        assert not result.stopped_early

    def test_max_prune_fraction_cap(self, conv_model):
        layer = conv_model[0]
        result = prune_by_sequence(
            conv_model,
            layer,
            list(range(8)),
            lambda m: 1.0,
            accuracy_drop_threshold=1.0,
            max_prune_fraction=0.5,
        )
        assert result.num_pruned == 4  # 50% of 8

    def test_trace_length_matches(self, conv_model):
        layer = conv_model[0]
        result = prune_by_sequence(
            conv_model, layer, [0, 1], lambda m: 0.8, accuracy_drop_threshold=0.5
        )
        assert len(result.accuracy_trace) == result.num_pruned

    def test_pruned_weights_zeroed(self, conv_model):
        layer = conv_model[0]
        prune_by_sequence(conv_model, layer, [2], lambda m: 1.0, 0.5)
        assert (layer.weight.data[2] == 0).all()

    def test_duplicate_channels_rejected(self, conv_model):
        with pytest.raises(ValueError, match="unique"):
            prune_by_sequence(conv_model, conv_model[0], [1, 1], lambda m: 1.0)

    def test_out_of_range_rejected(self, conv_model):
        with pytest.raises(ValueError, match="valid channel"):
            prune_by_sequence(conv_model, conv_model[0], [99], lambda m: 1.0)

    def test_skips_already_pruned(self, conv_model):
        layer = conv_model[0]
        layer.out_mask[3] = False
        result = prune_by_sequence(conv_model, layer, [3, 4], lambda m: 1.0, 0.5)
        assert result.pruned_channels == [4]


class TestAccuracyOracles:
    def test_server_validation_oracle(self, tiny_cnn, tiny_dataset):
        oracle = server_validation_accuracy(tiny_dataset)
        accuracy = oracle(tiny_cnn)
        assert 0.0 <= accuracy <= 1.0

    def test_client_feedback_median_resists_liars(self, tiny_cnn):
        class Honest:
            def accuracy_report(self, model):
                return 0.8

        class Liar:
            def accuracy_report(self, model):
                return 1.0

        clients = [Honest(), Honest(), Honest(), Liar(), Liar()]
        assert client_feedback_accuracy(clients, tiny_cnn) == 0.8

    def test_client_feedback_empty(self, tiny_cnn):
        with pytest.raises(ValueError):
            client_feedback_accuracy([], tiny_cnn)
