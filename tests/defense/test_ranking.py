"""Tests for RAP/MVP local reports and server aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.defense.ranking import (
    aggregate_rankings,
    aggregate_votes,
    local_prune_votes,
    local_ranking,
    mvp_prune_order,
    rap_prune_order,
    validate_ranking_report,
    validate_vote_report,
)

activations = arrays(
    np.float64,
    st.integers(4, 20),
    elements=st.floats(0, 10, allow_nan=False, allow_infinity=False),
)


class TestLocalRanking:
    def test_decreasing_order(self):
        ranking = local_ranking(np.array([0.1, 0.9, 0.5]))
        np.testing.assert_array_equal(ranking, [1, 2, 0])

    @given(acts=activations)
    @settings(max_examples=40, deadline=None)
    def test_is_permutation_sorted_decreasing(self, acts):
        ranking = local_ranking(acts)
        np.testing.assert_array_equal(np.sort(ranking), np.arange(acts.size))
        sorted_acts = acts[ranking]
        assert (np.diff(sorted_acts) <= 1e-12).all()

    def test_ties_broken_by_index(self):
        ranking = local_ranking(np.array([0.5, 0.5, 0.5]))
        np.testing.assert_array_equal(ranking, [0, 1, 2])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            local_ranking(np.zeros((2, 2)))


class TestLocalPruneVotes:
    def test_budget(self):
        votes = local_prune_votes(np.arange(10, dtype=float), prune_rate=0.3)
        assert votes.sum() == 3

    def test_votes_least_active(self):
        acts = np.array([5.0, 1.0, 4.0, 0.5, 3.0])
        votes = local_prune_votes(acts, prune_rate=0.4)
        np.testing.assert_array_equal(np.flatnonzero(votes), [1, 3])

    @given(
        acts=activations,
        rate=st.floats(0.05, 0.95),
    )
    @settings(max_examples=40, deadline=None)
    def test_budget_property(self, acts, rate):
        votes = local_prune_votes(acts, rate)
        expected = max(1, min(int(round(rate * acts.size)), acts.size - 1))
        assert votes.sum() == expected
        assert set(np.unique(votes)) <= {0, 1}

    def test_never_votes_everything(self):
        votes = local_prune_votes(np.zeros(4), prune_rate=0.99)
        assert votes.sum() == 3

    def test_invalid_rate(self):
        with pytest.raises(ValueError, match="prune_rate"):
            local_prune_votes(np.zeros(4), prune_rate=1.0)


class TestAggregateRankings:
    def test_mean_positions(self):
        # two clients, three channels
        rankings = np.array([[0, 1, 2], [2, 1, 0]])
        positions = aggregate_rankings(rankings)
        np.testing.assert_allclose(positions, [1.0, 1.0, 1.0])

    def test_unanimous(self):
        rankings = np.array([[2, 0, 1], [2, 0, 1]])
        positions = aggregate_rankings(rankings)
        np.testing.assert_allclose(positions, [1.0, 2.0, 0.0])

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            aggregate_rankings(np.array([[0, 0, 1]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            aggregate_rankings(np.array([0, 1, 2]))


class TestAggregateVotes:
    def test_shares(self):
        votes = np.array([[1, 0], [1, 1], [0, 0]])
        np.testing.assert_allclose(aggregate_votes(votes), [2 / 3, 1 / 3])

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="0/1"):
            aggregate_votes(np.array([[0.5, 0.5]]))


class TestPruneOrders:
    def test_rap_least_active_first(self):
        # channel 0 most active for both clients -> pruned last
        rankings = np.array([[0, 1, 2], [0, 2, 1]])
        order = rap_prune_order(rankings)
        assert order[-1] == 0

    def test_mvp_most_voted_first(self):
        votes = np.array([[1, 0, 0], [1, 0, 1], [1, 1, 0]])
        order = mvp_prune_order(votes)
        assert order[0] == 0

    @given(
        data=st.data(),
        num_clients=st.integers(1, 7),
        channels=st.integers(3, 12),
    )
    @settings(max_examples=30, deadline=None)
    def test_orders_are_permutations(self, data, num_clients, channels):
        rankings = np.stack(
            [
                np.random.default_rng(data.draw(st.integers(0, 1000))).permutation(
                    channels
                )
                for _ in range(num_clients)
            ]
        )
        order = rap_prune_order(rankings)
        np.testing.assert_array_equal(np.sort(order), np.arange(channels))

    def test_minority_manipulation_bounded_mvp(self):
        """One attacker flipping its votes cannot override 9 honest votes."""
        honest = np.zeros((9, 10), dtype=int)
        honest[:, [0, 1, 2]] = 1  # all honest clients vote channels 0-2
        attacker = np.zeros((1, 10), dtype=int)
        attacker[:, [7, 8, 9]] = 1
        order = mvp_prune_order(np.vstack([honest, attacker]))
        assert set(order[:3].tolist()) == {0, 1, 2}


class TestHeterogeneousReportSets:
    """Both aggregations run over however many reports arrived — a
    post-dropout subset or a duplicated report must aggregate cleanly."""

    def test_rap_fewer_reports_than_clients(self):
        # population of 10, but only 4 reports survived collection
        rng = np.random.default_rng(0)
        reports = np.stack([rng.permutation(6) for _ in range(4)])
        order = rap_prune_order(reports)
        np.testing.assert_array_equal(np.sort(order), np.arange(6))

    def test_mvp_fewer_reports_than_clients(self):
        reports = np.stack([local_prune_votes(np.arange(6.0), 0.5)] * 3)
        order = mvp_prune_order(reports)
        np.testing.assert_array_equal(np.sort(order), np.arange(6))

    def test_rap_duplicate_reports_reweight_not_crash(self):
        base = np.array([[0, 1, 2, 3], [3, 2, 1, 0]])
        dup = np.vstack([base, base[0]])  # client 0's report arrives twice
        order = rap_prune_order(dup)
        np.testing.assert_array_equal(np.sort(order), np.arange(4))
        # the duplicated view dominates the mean positions
        np.testing.assert_array_equal(order, rap_prune_order(base[[0, 0, 0, 1]]))

    def test_mvp_duplicate_reports_shift_shares(self):
        votes = np.array([[1, 0, 0, 0], [0, 0, 0, 1]])
        dup = np.vstack([votes, votes[0]])
        shares = aggregate_votes(dup)
        assert shares[0] > shares[3]

    def test_single_report_suffices(self):
        order = rap_prune_order(np.array([[2, 0, 1]]))
        np.testing.assert_array_equal(np.sort(order), np.arange(3))


class TestReportValidators:
    def test_ranking_accepts_permutation(self):
        assert validate_ranking_report(np.array([2, 0, 1]), 3) is None

    @pytest.mark.parametrize(
        "report",
        [
            np.array([0, 1]),  # wrong length
            np.array([0, 0, 2]),  # duplicate
            np.array([0, 1, 5]),  # out of range
            np.array([0.0, 1.0, 2.0]),  # non-integer dtype
            np.zeros((1, 3), dtype=int),  # wrong rank
        ],
    )
    def test_ranking_rejects_malformed(self, report):
        assert validate_ranking_report(report, 3) is not None

    def test_votes_accept_binary(self):
        assert validate_vote_report(np.array([1, 0, 1]), 3) is None
        assert validate_vote_report(np.array([1.0, 0.0, 1.0]), 3) is None

    @pytest.mark.parametrize(
        "report",
        [
            np.array([1, 0]),  # wrong length
            np.array([1, 0, 2]),  # non-binary
            np.array([1.0, 0.0, np.nan]),  # non-finite
            np.array(["a", "b", "c"]),  # non-numeric
        ],
    )
    def test_votes_reject_malformed(self, report):
        assert validate_vote_report(report, 3) is not None
