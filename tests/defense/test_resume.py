"""Crash-and-resume for the defense pipeline and fine-tuning stage.

The defense resume contract is *state identity*: a pipeline killed at
any point and resumed in a freshly rebuilt world produces the same final
model and the same :class:`DefenseReport` as one that never crashed,
and completed stages are never recomputed.
"""

import numpy as np
import pytest

from repro.defense.adjust_weights import AdjustResult
from repro.defense.fine_tune import FineTuneResult, federated_fine_tune
from repro.defense.pipeline import DefenseConfig, DefensePipeline
from repro.defense.pruning import PruningResult
from repro.obs.context import RunContext
from repro.persist import CheckpointManager

from ..fl.test_resume import make_world


def acc_fn(model):
    """A deterministic validation oracle (pure function of the weights)."""
    return float(np.tanh(np.abs(model.flat_parameters()).mean() * 10))


class CrashAfter:
    """acc_fn that dies once its call budget is exhausted."""

    def __init__(self, calls: int) -> None:
        self.calls = calls
        self.count = 0

    def __call__(self, model) -> float:
        self.count += 1
        if self.count > self.calls:
            raise RuntimeError("injected crash")
        return acc_fn(model)


def defense_config() -> DefenseConfig:
    return DefenseConfig(
        method="mvp", fine_tune=True, fine_tune_rounds=3, fine_tune_patience=2
    )


class TestFineTuneResume:
    def test_crash_and_resume_matches_uninterrupted(self, tmp_path):
        model, clients, _ = make_world()
        ref = federated_fine_tune(model, clients, acc_fn, max_rounds=4, patience=2)
        ref_params = model.flat_parameters()

        manager = CheckpointManager(tmp_path / "ft")
        model2, clients2, _ = make_world()
        with pytest.raises(RuntimeError, match="injected"):
            # baseline + round-0 eval succeed; dies during round 1
            federated_fine_tune(
                model2, clients2, CrashAfter(2), max_rounds=4, patience=2,
                checkpoint=manager, resume=True,
            )
        assert manager.load_latest("fine_tune") is not None

        model3, clients3, _ = make_world()
        result = federated_fine_tune(
            model3, clients3, acc_fn, max_rounds=4, patience=2,
            checkpoint=manager, resume=True,
        )
        assert np.array_equal(model3.flat_parameters(), ref_params)
        assert result.to_jsonable() == ref.to_jsonable()

    def test_resume_validation(self, tmp_path):
        model, clients, _ = make_world()
        with pytest.raises(ValueError, match="resume"):
            federated_fine_tune(model, clients, acc_fn, resume=True)
        with pytest.raises(ValueError, match="checkpoint_every"):
            federated_fine_tune(
                model, clients, acc_fn,
                checkpoint=CheckpointManager(tmp_path), checkpoint_every=0,
            )

    def test_exhausted_patience_resumes_to_immediate_stop(self, tmp_path):
        """A snapshot taken right before the early stop does not train more."""
        manager = CheckpointManager(tmp_path / "ft")
        model, clients, _ = make_world()
        ref = federated_fine_tune(
            model, clients, acc_fn, max_rounds=4, patience=2,
            checkpoint=manager,
        )
        model2, clients2, _ = make_world()
        result = federated_fine_tune(
            model2, clients2, acc_fn, max_rounds=4, patience=2,
            checkpoint=manager, resume=True,
        )
        assert result.rounds_run == ref.rounds_run
        assert np.array_equal(model2.flat_parameters(), model.flat_parameters())


class TestPipelineResume:
    def _reference(self):
        model, clients, _ = make_world()
        pipeline = DefensePipeline(clients, acc_fn, defense_config())
        report = pipeline.run(model)
        return model.flat_parameters(), report

    def _pruning_call_budget(self):
        """How many acc_fn calls the pruning stage consumes (seeded probe)."""
        from repro.defense.pruning import prune_by_sequence

        model, clients, _ = make_world()
        probe = DefensePipeline(clients, acc_fn, defense_config())
        order = probe.global_prune_order(model)
        model2, _, _ = make_world()
        counter = CrashAfter(10**9)
        prune_by_sequence(model2, model2.last_conv(), order, counter)
        return counter.count

    def test_crash_in_fine_tune_resumes_without_recomputing_pruning(
        self, tmp_path
    ):
        ref_params, ref_report = self._reference()
        manager = CheckpointManager(tmp_path / "defense")

        # dies during the second fine-tuning round
        crash_at = self._pruning_call_budget() + 2
        model, clients, _ = make_world()
        crashing = DefensePipeline(
            clients, CrashAfter(crash_at), defense_config(),
            context=RunContext(checkpoint=manager, resume=True),
        )
        with pytest.raises(RuntimeError, match="injected"):
            crashing.run(model)
        kinds = {e["kind"] for e in manager.entries()}
        assert kinds == {"defense", "fine_tune"}

        model2, clients2, _ = make_world()
        resumed = DefensePipeline(
            clients2, acc_fn, defense_config(),
            context=RunContext(checkpoint=manager, resume=True),
        )

        def recomputed(_model):
            raise AssertionError("pruning re-ran on resume")

        resumed.global_prune_order = recomputed
        report = resumed.run(model2)

        assert np.array_equal(model2.flat_parameters(), ref_params)
        assert report.pruning.to_jsonable() == ref_report.pruning.to_jsonable()
        assert (
            report.fine_tuning.to_jsonable()
            == ref_report.fine_tuning.to_jsonable()
        )
        assert (
            report.adjusting.to_jsonable()
            == ref_report.adjusting.to_jsonable()
        )
        assert set(report.stage_seconds) == {
            "pruning", "fine_tuning", "adjusting"
        }

    def test_completed_pipeline_resumes_to_full_report(self, tmp_path):
        """Resuming past the last stage recomputes nothing and loses nothing."""
        ref_params, ref_report = self._reference()
        manager = CheckpointManager(tmp_path / "defense")
        model, clients, _ = make_world()
        DefensePipeline(
            clients, acc_fn, defense_config(),
            context=RunContext(checkpoint=manager, resume=True),
        ).run(model)

        model2, clients2, _ = make_world()
        resumed = DefensePipeline(
            clients2, CrashAfter(0), defense_config(),  # any acc call would die
            context=RunContext(checkpoint=manager, resume=True),
        )
        report = resumed.run(model2)
        assert np.array_equal(model2.flat_parameters(), ref_params)
        assert report.adjusting.to_jsonable() == ref_report.adjusting.to_jsonable()

    def test_resume_without_checkpoint_raises(self):
        model, clients, _ = make_world()
        pipeline = DefensePipeline(
            clients, acc_fn, defense_config(), context=RunContext(resume=True)
        )
        with pytest.raises(ValueError, match="resume"):
            pipeline.run(model)


class TestResultCodecs:
    def test_pruning_round_trip(self):
        result = PruningResult([3, 1], [0.9, 0.88], 0.91, True)
        clone = PruningResult.from_jsonable(result.to_jsonable())
        assert clone.to_jsonable() == result.to_jsonable()
        assert clone.num_pruned == 2

    def test_fine_tune_round_trip(self):
        result = FineTuneResult(
            2, [0.5, 0.6], 0.45, num_dropped=1, num_rejected=2,
            skipped_rounds=[1],
        )
        clone = FineTuneResult.from_jsonable(result.to_jsonable())
        assert clone.to_jsonable() == result.to_jsonable()
        assert clone.final_accuracy == result.final_accuracy

    def test_adjust_round_trip(self):
        result = AdjustResult(2.5, 4, [(5.0, 0, 0.9), (2.5, 4, 0.89)], 0.9)
        clone = AdjustResult.from_jsonable(result.to_jsonable())
        assert clone.to_jsonable() == result.to_jsonable()
        assert clone.trace == result.trace
