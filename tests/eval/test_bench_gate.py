"""Unit tests for the bench perf-regression gate (compare_to_baseline)."""

import pytest

from repro.eval.parallel_bench import (
    METRICS_OVERHEAD_CEILING,
    compare_to_baseline,
)


def payload(training=1.0, defense=0.5, engines=("serial", "thread")):
    return {
        "timings": {
            engine: {"training": training, "defense": defense}
            for engine in engines
        }
    }


class TestCompareToBaseline:
    def test_identical_payloads_pass(self):
        verdict = compare_to_baseline(payload(), payload())
        assert verdict["ok"] is True
        assert verdict["regressions"] == []
        assert verdict["checked"] == 4  # 2 engines x 2 stages

    def test_injected_2x_slowdown_is_flagged(self):
        verdict = compare_to_baseline(payload(training=2.0), payload())
        assert verdict["ok"] is False
        [reg] = [r for r in verdict["regressions"] if r["engine"] == "serial"]
        assert reg["stage"] == "training"
        assert reg["ratio"] == pytest.approx(2.0)
        # both engines regressed the same stage
        assert len(verdict["regressions"]) == 2

    def test_slowdown_within_threshold_passes(self):
        verdict = compare_to_baseline(
            payload(training=1.2), payload(), threshold=0.25
        )
        assert verdict["ok"] is True

    def test_min_seconds_suppresses_microsecond_noise(self):
        head = payload(training=1e-5, defense=1e-5)
        base = payload(training=1e-6, defense=1e-6)
        verdict = compare_to_baseline(head, base)  # 10x but micro-scale
        assert verdict["ok"] is True

    def test_missing_engines_are_skipped_not_failed(self):
        head = payload(engines=("serial",))
        base = payload(engines=("serial", "thread", "process"))
        verdict = compare_to_baseline(head, base)
        assert verdict["ok"] is True
        assert verdict["checked"] == 2  # only serial overlaps

    def test_speedup_never_regresses(self):
        verdict = compare_to_baseline(payload(training=0.5), payload())
        assert verdict["ok"] is True

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_to_baseline(payload(), payload(), threshold=0.0)


class TestMetricsOverheadGate:
    """The online-metrics overhead cap is absolute, not baseline-relative."""

    def with_metrics(self, overhead):
        head = payload()
        head["metrics"] = {"overhead_fraction": overhead}
        return head

    def test_overhead_within_ceiling_passes(self):
        verdict = compare_to_baseline(
            self.with_metrics(METRICS_OVERHEAD_CEILING / 2), payload()
        )
        assert verdict["ok"] is True
        assert verdict["checked"] == 5  # 4 stage timings + the metrics gate

    def test_negative_overhead_is_fine(self):
        verdict = compare_to_baseline(self.with_metrics(-0.01), payload())
        assert verdict["ok"] is True

    def test_overhead_above_ceiling_fails_regardless_of_baseline(self):
        # even a baseline that itself blew the ceiling does not excuse it
        base = self.with_metrics(0.5)
        verdict = compare_to_baseline(self.with_metrics(0.1), base)
        assert verdict["ok"] is False
        [reg] = [
            r for r in verdict["regressions"] if r["engine"] == "metrics"
        ]
        assert reg["stage"] == "overhead_fraction"
        assert reg["head_seconds"] == pytest.approx(0.1)
        assert reg["base_seconds"] == pytest.approx(METRICS_OVERHEAD_CEILING)

    def test_payload_without_metrics_section_is_skipped(self):
        verdict = compare_to_baseline(payload(), self.with_metrics(0.0))
        assert verdict["ok"] is True
        assert verdict["checked"] == 4
