"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.attacks.poison import BackdoorTask
from repro.attacks.triggers import pixel_pattern
from repro.data.dataset import Dataset
from repro.eval.metrics import attack_success_rate, predict
from repro.eval.metrics import test_accuracy as accuracy_of  # alias: bare name would be collected as a test


class TestPredict:
    def test_batching_consistent(self, tiny_cnn, tiny_dataset):
        a = predict(tiny_cnn, tiny_dataset.images, batch_size=7)
        b = predict(tiny_cnn, tiny_dataset.images, batch_size=60)
        np.testing.assert_array_equal(a, b)

    def test_empty_input(self, tiny_cnn):
        out = predict(tiny_cnn, np.zeros((0, 1, 8, 8)))
        assert out.shape == (0,)

    def test_restores_training_mode(self, tiny_cnn, tiny_dataset):
        tiny_cnn.train()
        predict(tiny_cnn, tiny_dataset.images)
        assert tiny_cnn.training


class TestTestAccuracy:
    def test_training_beats_chance(self, tiny_cnn, tiny_dataset):
        from tests.conftest import train_tiny

        train_tiny(tiny_cnn, tiny_dataset, epochs=10)
        # random 8x8 noise over 5 classes: memorization beats 20% chance
        assert accuracy_of(tiny_cnn, tiny_dataset) > 0.3

    def test_range(self, tiny_cnn, tiny_dataset):
        acc = accuracy_of(tiny_cnn, tiny_dataset)
        assert 0.0 <= acc <= 1.0

    def test_empty_rejected(self, tiny_cnn):
        empty = Dataset(np.zeros((0, 1, 8, 8)), np.zeros(0, dtype=int))
        with pytest.raises(ValueError, match="empty"):
            accuracy_of(tiny_cnn, empty)


class TestAttackSuccessRate:
    def test_equals_accuracy_on_triggered_victims(self, tiny_cnn, tiny_dataset):
        task = BackdoorTask(pixel_pattern(3, 8), victim_label=4, attack_label=1)
        asr = attack_success_rate(tiny_cnn, task, tiny_dataset)
        assert 0.0 <= asr <= 1.0

    def test_backdoored_model_scores_high(self, tiny_cnn, tiny_dataset, rng):
        """Train the model on poisoned data; ASR should be near 1."""
        from repro.attacks.poison import poison_dataset
        from tests.conftest import train_tiny

        task = BackdoorTask(pixel_pattern(5, 8), victim_label=4, attack_label=1)
        poisoned = poison_dataset(tiny_dataset, task, rng=rng)
        train_tiny(tiny_cnn, poisoned, epochs=10)
        assert attack_success_rate(tiny_cnn, task, tiny_dataset) > 0.7
