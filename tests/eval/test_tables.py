"""Tests for table rendering."""

from repro.eval.tables import TableResult, format_table, percent


class TestPercent:
    def test_formats(self):
        assert percent(0.983) == "98.3"
        assert percent(1.0) == "100.0"
        assert percent(0.04667, digits=2) == "4.67"


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(empty table)"

    def test_alignment_and_columns(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        rendered = format_table(rows)
        lines = rendered.splitlines()
        assert lines[0].startswith("a")
        assert "22" in lines[3]
        # all lines equal width structure (header, divider, 2 rows)
        assert len(lines) == 4

    def test_explicit_column_order(self):
        rows = [{"a": 1, "b": 2}]
        rendered = format_table(rows, columns=["b", "a"])
        header = rendered.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_missing_cells_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        rendered = format_table(rows, columns=["a", "b"])
        assert rendered  # no KeyError

    def test_float_formatting(self):
        rendered = format_table([{"x": 0.123456}])
        assert "0.123" in rendered


class TestTableResult:
    def test_str_includes_everything(self):
        result = TableResult(
            "tab1",
            "A Title",
            [{"col": 1.0}],
            summary={"metric": 0.5, "count": 3},
        )
        text = str(result)
        assert "tab1" in text
        assert "A Title" in text
        assert "metric: 0.5000" in text
        assert "count: 3" in text

    def test_str_without_summary(self):
        result = TableResult("f", "t", [{"x": 1}])
        assert "summary" not in str(result)


class TestJsonRoundtrip:
    def test_roundtrip(self):
        import numpy as np

        result = TableResult(
            "t", "title", [{"a": np.float64(0.5), "b": 1}], {"m": np.int64(3)}
        )
        restored = TableResult.from_json(result.to_json())
        assert restored.experiment_id == "t"
        assert restored.rows == [{"a": 0.5, "b": 1}]
        assert restored.summary == {"m": 3}

    def test_infinity_coerced(self):
        result = TableResult("t", "x", [{"cost": float("inf")}])
        assert '"inf"' in result.to_json()


class TestCounters:
    def test_str_includes_counters_sorted(self):
        result = TableResult(
            "t", "x", [{"a": 1}],
            counters={"fl.rounds_skipped": 2, "fl.quarantines": 1},
        )
        text = str(result)
        assert "counters:" in text
        assert text.index("fl.quarantines: 1") < text.index(
            "fl.rounds_skipped: 2"
        )

    def test_str_without_counters(self):
        assert "counters" not in str(TableResult("t", "x", [{"a": 1}]))

    def test_counters_json_roundtrip(self):
        result = TableResult(
            "t", "x", [{"a": 1}], counters={"watchdog.rollbacks": 4}
        )
        restored = TableResult.from_json(result.to_json())
        assert restored.counters == {"watchdog.rollbacks": 4}

    def test_empty_counters_omitted_from_json(self):
        assert "counters" not in TableResult("t", "x", [{"a": 1}]).to_json()
