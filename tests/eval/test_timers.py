"""Tests for the stage timer."""

import time

import pytest

from repro.eval.timers import StageTimer


class TestStageTimer:
    def test_measures_elapsed(self):
        timer = StageTimer()
        with timer.stage("work"):
            time.sleep(0.02)
        assert timer.seconds["work"] >= 0.015

    def test_accumulates_same_stage(self):
        timer = StageTimer()
        with timer.stage("w"):
            time.sleep(0.01)
        with timer.stage("w"):
            time.sleep(0.01)
        assert timer.seconds["w"] >= 0.018

    def test_total(self):
        timer = StageTimer()
        timer.add("a", 1.0)
        timer.add("b", 2.0)
        assert timer.total() == pytest.approx(3.0)

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            StageTimer().add("x", -1.0)

    def test_exception_still_records(self):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("boom"):
                raise RuntimeError("x")
        assert "boom" in timer.seconds
