"""Argument handling for the experiment runner CLI.

Full experiment execution is exercised elsewhere (test_registry); here
we pin the flag surface: validation errors exit before any experiment
starts, and ``--max-rounds`` caps a *copy* of the scale preset.
"""

import pytest

from repro.experiments.cli import _apply_max_rounds, build_parser, main
from repro.experiments.scale import get_scale


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.checkpoint_dir is None
        assert args.resume is False
        assert args.checkpoint_every == 1
        assert args.max_rounds is None

    def test_checkpoint_flags_parse(self, tmp_path):
        args = build_parser().parse_args(
            [
                "table1",
                "--checkpoint-dir", str(tmp_path),
                "--resume",
                "--checkpoint-every", "3",
                "--max-rounds", "2",
            ]
        )
        assert args.checkpoint_dir == str(tmp_path)
        assert args.resume is True
        assert args.checkpoint_every == 3
        assert args.max_rounds == 2


class TestValidation:
    def test_resume_requires_checkpoint_dir(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--resume"])
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_checkpoint_every_must_be_positive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["table1", "--checkpoint-dir", str(tmp_path),
                 "--checkpoint-every", "0"]
            )

    def test_max_rounds_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["table1", "--max-rounds", "0"])


class TestMaxRounds:
    def test_caps_both_round_budgets(self):
        scale = get_scale("bench")
        capped = _apply_max_rounds(scale, 1)
        assert capped.rounds == 1
        assert capped.cifar_rounds == 1
        # the preset itself is untouched (it is module-global state)
        assert scale.rounds == get_scale("bench").rounds

    def test_never_raises_a_budget(self):
        scale = get_scale("smoke")
        capped = _apply_max_rounds(scale, 10_000)
        assert capped.rounds == scale.rounds
        assert capped.cifar_rounds == scale.cifar_rounds


class TestTraceOut:
    def test_trace_out_writes_analyzable_jsonl(self, tmp_path, capsys):
        from repro.obs.analysis import load_trace

        trace = tmp_path / "run.jsonl"
        assert main(
            ["fig6", "--scale", "smoke", "--seed", "13",
             "--trace-out", str(trace), "--profile"]
        ) == 0
        assert trace.exists()
        assert "trace written" in capsys.readouterr().out
        analysis = load_trace(str(trace))
        assert analysis.roots, "experiment span expected"
        assert [r.name for r in analysis.roots][0] == "experiment"
        # --profile left aggregated per-layer records in the stream
        assert any(
            r.get("name") == "profile.forward" for r in analysis.records
        )

    def test_trace_path_suffixed_per_experiment_for_all(self):
        from repro.experiments.cli import _trace_path

        ids = ["fig6", "table1"]
        assert _trace_path("t.jsonl", "fig6", ids) == "t-fig6.jsonl"
        assert _trace_path("trace", "fig6", ids) == "trace-fig6"
        assert _trace_path("t.jsonl", "fig6", ["fig6"]) == "t.jsonl"


class TestServe:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.schedule == "bursty"
        assert args.service_rounds == 8
        assert args.deadline == 10.0
        assert args.quorum == 0.5

    def test_schedule_choices(self):
        for kind in ("steady", "bursty", "flash", "adversarial", "chaos"):
            args = build_parser().parse_args(["serve", "--schedule", kind])
            assert args.schedule == kind
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--schedule", "tsunami"])

    def test_service_rounds_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--service-rounds", "0"])
        assert "--service-rounds" in capsys.readouterr().err

    def test_paper_scale_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--scale", "paper"])
        assert "bench world" in capsys.readouterr().err

    def test_serve_smoke_streams_rounds_and_trace(self, tmp_path, capsys):
        from repro.obs.analysis import load_trace

        trace = tmp_path / "service.jsonl"
        assert main(
            ["serve", "--scale", "smoke", "--service-rounds", "2",
             "--trace-out", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert "rounds committed" in out
        assert "commit latency" in out
        assert trace.exists()
        analysis = load_trace(str(trace))
        assert [r.name for r in analysis.roots] == ["service.run"]
