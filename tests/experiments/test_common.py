"""Integration tests for the experiment harness (SMOKE scale)."""

import numpy as np
import pytest

from repro.experiments.common import (
    FederatedSetup,
    build_setup,
    clone_model,
    evaluate_modes,
)
from repro.experiments.scale import SMOKE
from repro.fl.client import MaliciousClient


@pytest.fixture(scope="module")
def setup():
    """One shared smoke-scale training run for all tests in this module."""
    return build_setup("mnist", SMOKE, seed=11)


class TestBuildSetup:
    def test_population_and_attacker(self, setup):
        assert len(setup.clients) == SMOKE.num_clients
        assert isinstance(setup.clients[0], MaliciousClient)
        assert sum(isinstance(c, MaliciousClient) for c in setup.clients) == 1

    def test_history_length(self, setup):
        assert len(setup.history) == SMOKE.rounds

    def test_attacker_holds_victim_data(self, setup):
        attacker = setup.clients[0]
        assert (attacker.dataset.labels == setup.eval_task.victim_label).sum() > 0

    def test_metrics_in_range(self, setup):
        ta, aa = setup.metrics()
        assert 0.0 <= ta <= 1.0
        assert 0.0 <= aa <= 1.0

    def test_deterministic_given_seed(self):
        a = build_setup("mnist", SMOKE, seed=5, rounds=1)
        b = build_setup("mnist", SMOKE, seed=5, rounds=1)
        np.testing.assert_allclose(
            a.model.flat_parameters(), b.model.flat_parameters()
        )

    def test_dba_forces_four_attackers(self):
        setup = build_setup("mnist", SMOKE, dba=True, seed=7, rounds=1)
        attackers = [c for c in setup.clients if isinstance(c, MaliciousClient)]
        assert len(attackers) == 4
        # each attacker trains with its own local bar pattern
        masks = [a.task.trigger.mask for a in attackers]
        union = np.zeros_like(masks[0])
        for m in masks:
            union |= m
        np.testing.assert_array_equal(union, setup.eval_task.trigger.mask)

    def test_training_seconds_recorded(self, setup):
        assert setup.training_seconds > 0


class TestCloneModel:
    def test_clone_is_independent(self, setup):
        clone = clone_model(setup.model)
        clone.parameters()[0].data += 1.0
        assert not np.allclose(
            clone.flat_parameters(), setup.model.flat_parameters()
        )

    def test_clone_preserves_masks(self, setup):
        layer = setup.model.last_conv()
        layer.out_mask[0] = False
        clone = clone_model(setup.model)
        assert not clone.last_conv().out_mask[0]
        layer.out_mask[0] = True


class TestEvaluateModes:
    def test_all_modes_present(self, setup):
        results = evaluate_modes(setup)
        assert set(results) == {"training", "fp", "fp_aw", "all"}
        for ta, aa in results.values():
            assert 0.0 <= ta <= 1.0
            assert 0.0 <= aa <= 1.0

    def test_subset_of_modes(self, setup):
        results = evaluate_modes(setup, modes=("training",))
        assert set(results) == {"training"}

    def test_unknown_mode_rejected(self, setup):
        with pytest.raises(ValueError, match="unknown modes"):
            evaluate_modes(setup, modes=("training", "magic"))

    def test_original_model_untouched(self, setup):
        before = setup.model.flat_parameters()
        evaluate_modes(setup, modes=("fp",))
        np.testing.assert_array_equal(setup.model.flat_parameters(), before)
