"""The attack × defense robustness matrix experiment."""

import pytest

from repro.experiments.cli import _apply_max_rounds, main
from repro.experiments.matrix import CLEANSE, DEFAULT_DEFENSES, run
from repro.experiments.registry import run_experiment
from repro.experiments.scale import SMOKE
from repro.obs import RingBufferSink, RunContext, Telemetry
from repro.obs.schema import unknown_names

TINY = _apply_max_rounds(SMOKE, 2)


class TestGrid:
    def test_long_format_rows_cover_the_grid(self):
        attacks = ("badnets", "lie")
        defenses = ("fedavg", "robust_lr", CLEANSE)
        result = run(TINY, seed=13, attacks=attacks, defenses=defenses)
        assert result.experiment_id == "matrix"
        assert result.columns == ["attack", "defense", "TA", "ASR"]
        assert [(r["attack"], r["defense"]) for r in result.rows] == [
            (a, d) for a in attacks for d in defenses
        ]
        for row in result.rows:
            assert 0.0 <= row["TA"] <= 1.0
            assert 0.0 <= row["ASR"] <= 1.0
        assert result.summary["cells"] == 6.0
        assert any(k.startswith("best_defense[") for k in result.summary)

    def test_deterministic(self):
        kwargs = dict(
            seed=13, attacks=("badnets",), defenses=("fedavg", CLEANSE)
        )
        assert run(TINY, **kwargs).rows == run(TINY, **kwargs).rows

    def test_default_defense_grid_includes_cleanse(self):
        assert CLEANSE in DEFAULT_DEFENSES
        assert len(DEFAULT_DEFENSES) >= 7

    def test_registry_forwards_grid_kwargs(self):
        result = run_experiment(
            "matrix", TINY, seed=13,
            attacks=("badnets",), defenses=("fedavg",),
        )
        assert len(result.rows) == 1


class TestEagerValidation:
    def test_unknown_attack_fails_before_training(self):
        with pytest.raises(ValueError, match="unknown attack"):
            run(TINY, attacks=("badnets", "bogus"), defenses=("fedavg",))

    def test_unknown_defense_fails_before_training(self):
        with pytest.raises(ValueError, match="unknown aggregator"):
            run(TINY, attacks=("badnets",), defenses=("fedavg", "bogus"))

    def test_bad_aggregator_param_fails_before_training(self):
        with pytest.raises(ValueError):
            run(TINY, attacks=("badnets",), defenses=("krum:bogus=1",))

    def test_empty_grid(self):
        with pytest.raises(ValueError, match="at least one"):
            run(TINY, attacks=(), defenses=("fedavg",))


class TestTelemetry:
    def test_cells_and_attack_config_land_in_known_names(self):
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        run_experiment(
            "matrix", TINY, seed=13,
            context=RunContext(telemetry=hub),
            attacks=("lie",), defenses=("robust_lr",),
        )
        hub.close()
        assert unknown_names(ring.events) == []
        cells = [e for e in ring.events if e["name"] == "matrix.cell"]
        assert len(cells) == 1
        assert cells[0]["attrs"]["attack"] == "lie"
        assert cells[0]["attrs"]["defense"] == "robust_lr"
        assert 0.0 <= cells[0]["attrs"]["test_acc"] <= 1.0
        configured = [
            e for e in ring.events if e["name"] == "attack.configured"
        ]
        assert configured and configured[0]["attrs"]["attack"] == "lie"


class TestCLI:
    def test_matrix_runs_end_to_end(self, capsys):
        assert main(
            [
                "matrix", "--scale", "smoke", "--seed", "13",
                "--max-rounds", "2",
                "--attack", "badnets",
                "--aggregator", "fedavg,cleanse",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "matrix" in output
        assert "cleanse" in output

    def test_multi_param_aggregator_spec_survives_comma_split(self, capsys):
        assert main(
            [
                "matrix", "--scale", "smoke", "--seed", "13",
                "--max-rounds", "1",
                "--attack", "badnets",
                "--aggregator", "norm_clip:budget=1.5,noise_std=0.001,fedavg",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "norm_clip:budget=1.5,noise_std=0.001" in output

    def test_attack_flag_is_matrix_only(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--attack", "badnets"])
        assert "--attack" in capsys.readouterr().err

    def test_aggregator_flag_guard(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--aggregator", "median"])
        assert "--aggregator" in capsys.readouterr().err
