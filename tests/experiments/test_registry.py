"""Tests for the experiment registry and CLI plumbing."""

import pytest

from repro.eval.tables import TableResult
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.scale import SMOKE

EXPECTED_IDS = {
    "fig3", "table1", "table2", "table3", "table4", "table5",
    "fig5", "table6", "fig6", "table7", "fig7", "fig8", "fig9", "fig10",
    "ablation_prune_rate", "ablation_gamma", "ablation_clipping",
    "ablation_localization", "matrix",
}


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == EXPECTED_IDS

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("table99", SMOKE)

    def test_run_one_smoke_experiment(self):
        """fig6 is one of the cheapest: one training run + sweeps."""
        result = run_experiment("fig6", SMOKE, seed=13)
        assert isinstance(result, TableResult)
        assert result.experiment_id == "fig6"
        assert result.rows


class TestCLI:
    def test_parser_defaults(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.scale == "bench"
        assert args.seed == 42

    def test_cli_runs_smoke_experiment(self, capsys):
        from repro.experiments.cli import main

        assert main(["fig6", "--scale", "smoke", "--seed", "13"]) == 0
        output = capsys.readouterr().out
        assert "fig6" in output
        assert "finished in" in output


class TestRunCounters:
    def test_result_carries_final_counter_snapshot(self):
        from repro.obs import RingBufferSink, RunContext, Telemetry

        hub = Telemetry()
        hub.add_sink(RingBufferSink())
        result = run_experiment(
            "fig6", SMOKE, seed=13, context=RunContext(telemetry=hub)
        )
        hub.close()
        assert result.counters  # training ran, so fl.rounds et al exist
        assert result.counters["fl.rounds"] >= 1
        assert "fl.updates_accepted" in result.counters

    def test_null_hub_leaves_counters_empty(self):
        result = run_experiment("fig6", SMOKE, seed=13)
        assert result.counters == {}
