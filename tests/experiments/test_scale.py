"""Tests for experiment scale presets."""

import pytest

from repro.experiments.scale import BENCH, PAPER, SMOKE, get_scale


class TestPresets:
    def test_lookup(self):
        assert get_scale("smoke") is SMOKE
        assert get_scale("bench") is BENCH
        assert get_scale("paper") is PAPER

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown scale"):
            get_scale("huge")

    def test_ordering(self):
        """Presets grow monotonically in budget."""
        assert SMOKE.num_samples < BENCH.num_samples < PAPER.num_samples
        assert SMOKE.rounds < BENCH.rounds < PAPER.rounds

    def test_dataset_specific_knobs(self):
        assert BENCH.samples_for("cifar") == BENCH.cifar_samples
        assert BENCH.samples_for("mnist") == BENCH.num_samples
        assert BENCH.rounds_for("cifar") == BENCH.cifar_rounds

    def test_image_size_compatible_with_pooling(self):
        for preset in (SMOKE, BENCH, PAPER):
            assert preset.image_size % 16 == 0  # vgg_small pools 4 times
