"""Tests for experiment grid selectors (scale -> rows to run)."""

from repro.experiments import (
    fig3_distributions,
    fig7_client_sampling,
    fig8_num_attackers,
    table1_mnist,
    table2_fashion,
    table3_cifar_dba,
    table4_neural_cleanse,
    table5_pruning_methods,
    table6_adjust_weights,
    table7_patterns,
)
from repro.experiments.scale import BENCH, PAPER, SMOKE


class TestTargetGrids:
    def test_paper_scale_runs_full_grids(self):
        assert len(table1_mnist.target_pairs(PAPER)) == 18
        assert len(table5_pruning_methods.target_pairs(PAPER)) == 18
        assert len(table6_adjust_weights.target_pairs(PAPER)) == 18
        assert len(table2_fashion.target_pairs(PAPER)) == 9
        assert len(table3_cifar_dba.target_pairs(PAPER)) == 9
        assert len(table7_patterns.patterns_for(PAPER)) == 5

    def test_smaller_scales_run_subsets(self):
        for module in (table1_mnist, table5_pruning_methods, table2_fashion):
            assert len(module.target_pairs(SMOKE)) <= len(
                module.target_pairs(BENCH)
            ) <= len(module.target_pairs(PAPER))

    def test_pairs_are_valid(self):
        for victim, attack in table1_mnist.target_pairs(PAPER):
            assert 0 <= victim <= 9
            assert 0 <= attack <= 9
            assert victim != attack

    def test_table3_victim_is_truck(self):
        for victim, _ in table3_cifar_dba.target_pairs(PAPER):
            assert victim == 9  # CIFAR "truck"

    def test_fig3_distributions(self):
        assert fig3_distributions.distributions_for(PAPER) == [3, 5, 7]

    def test_fig7_sampling_sizes(self):
        assert fig7_client_sampling.sampling_sizes_for(PAPER) == [5, 10, 15, 20, 25]

    def test_fig8_attacker_counts_increase(self):
        counts = fig8_num_attackers.attacker_counts_for(PAPER)
        assert counts == sorted(counts)
        assert counts[0] >= 1

    def test_table4_datasets(self):
        assert table4_neural_cleanse.datasets_for(PAPER) == [
            "mnist",
            "fashion",
            "cifar",
        ]
        assert table4_neural_cleanse.datasets_for(SMOKE) == ["mnist"]

    def test_table7_patterns_are_valid(self):
        from repro.attacks.triggers import PIXEL_PATTERN_OFFSETS

        for pixels in table7_patterns.patterns_for(PAPER):
            assert pixels in PIXEL_PATTERN_OFFSETS
