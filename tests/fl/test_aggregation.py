"""Tests for aggregation rules, incl. hypothesis robustness properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fl.aggregation import (
    bulyan,
    coordinate_median,
    fedavg,
    krum,
    multi_krum,
    trimmed_mean,
    weighted_fedavg,
)

finite_floats = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


def update_matrix(min_clients=3, max_clients=8, dim=4):
    return arrays(
        np.float64,
        st.tuples(st.integers(min_clients, max_clients), st.just(dim)),
        elements=finite_floats,
    )


class TestFedAvg:
    def test_mean(self):
        updates = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(fedavg(updates), [2.0, 3.0])

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="matrix"):
            fedavg(np.zeros(5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            fedavg(np.zeros((0, 3)))

    @given(updates=update_matrix())
    @settings(max_examples=30, deadline=None)
    def test_within_convex_hull_per_coordinate(self, updates):
        agg = fedavg(updates)
        assert (agg >= updates.min(axis=0) - 1e-9).all()
        assert (agg <= updates.max(axis=0) + 1e-9).all()


class TestWeightedFedAvg:
    def test_weighting(self):
        updates = np.array([[0.0], [10.0]])
        agg = weighted_fedavg(updates, np.array([3.0, 1.0]))
        np.testing.assert_allclose(agg, [2.5])

    def test_equal_weights_match_fedavg(self, rng):
        updates = rng.standard_normal((4, 6))
        np.testing.assert_allclose(
            weighted_fedavg(updates, np.ones(4)), fedavg(updates)
        )

    def test_invalid_weights(self, rng):
        updates = rng.standard_normal((3, 2))
        with pytest.raises(ValueError, match="does not match"):
            weighted_fedavg(updates, np.ones(4))
        with pytest.raises(ValueError, match="non-negative"):
            weighted_fedavg(updates, np.array([1.0, -1.0, 1.0]))


class TestMedianAndTrimmedMean:
    def test_median_ignores_single_outlier(self):
        updates = np.array([[0.0], [0.1], [-0.1], [1e9]])
        assert abs(coordinate_median(updates)[0]) < 0.2

    def test_trimmed_mean_ignores_extremes(self):
        updates = np.array([[0.0], [0.1], [-0.1], [0.05], [1e9]])
        agg = trimmed_mean(updates, trim_ratio=0.2)
        assert abs(agg[0]) < 0.2

    def test_trimmed_mean_zero_ratio_is_mean(self, rng):
        updates = rng.standard_normal((5, 3))
        np.testing.assert_allclose(trimmed_mean(updates, 0.0), fedavg(updates))

    def test_trim_ratio_bounds(self, rng):
        with pytest.raises(ValueError):
            trimmed_mean(rng.standard_normal((4, 2)), trim_ratio=0.5)

    @given(updates=update_matrix(min_clients=5))
    @settings(max_examples=30, deadline=None)
    def test_median_within_range(self, updates):
        agg = coordinate_median(updates)
        assert (agg >= updates.min(axis=0) - 1e-9).all()
        assert (agg <= updates.max(axis=0) + 1e-9).all()


class TestKrum:
    def test_returns_a_member(self, rng):
        updates = rng.standard_normal((6, 4))
        agg = krum(updates, num_byzantine=1)
        assert any(np.array_equal(agg, u) for u in updates)

    def test_rejects_far_outlier(self):
        cluster = np.random.default_rng(0).normal(0, 0.1, (5, 3))
        updates = np.vstack([cluster, np.full((1, 3), 1e6)])
        agg = krum(updates, num_byzantine=1)
        assert np.abs(agg).max() < 1.0

    def test_too_few_clients(self, rng):
        with pytest.raises(ValueError, match="krum needs"):
            krum(rng.standard_normal((3, 2)), num_byzantine=2)

    def test_multi_krum_averages_selection(self, rng):
        updates = rng.standard_normal((6, 4))
        agg = multi_krum(updates, num_byzantine=1, num_selected=3)
        assert agg.shape == (4,)

    def test_multi_krum_selection_bounds(self, rng):
        with pytest.raises(ValueError, match="num_selected"):
            multi_krum(rng.standard_normal((4, 2)), num_selected=5)


class TestBulyan:
    def test_rejects_outlier(self):
        cluster = np.random.default_rng(1).normal(0, 0.1, (7, 3))
        updates = np.vstack([cluster, np.full((1, 3), 1e6)])
        agg = bulyan(updates, num_byzantine=1)
        assert np.abs(agg).max() < 1.0

    def test_no_byzantine_reduces_sanely(self, rng):
        updates = rng.standard_normal((5, 3))
        agg = bulyan(updates, num_byzantine=0)
        assert (agg >= updates.min(axis=0) - 1e-9).all()
        assert (agg <= updates.max(axis=0) + 1e-9).all()

    def test_infeasible_committee(self, rng):
        with pytest.raises(ValueError, match="bulyan needs"):
            bulyan(rng.standard_normal((4, 2)), num_byzantine=2)


class TestBackdoorSurvivesRobustRules:
    """The paper's observation: byzantine-robust rules do not stop a
    model-replacement backdoor whose update direction looks 'central'
    under non-IID updates.  We verify the weaker statistical fact they
    rely on: with high inter-client variance, a single crafted update
    shifts even the median noticeably."""

    def test_median_shift_under_noniid_variance(self):
        rng = np.random.default_rng(7)
        benign = rng.normal(0, 1.0, (9, 50))  # high variance = non-IID
        attacker = np.full((1, 50), 1.5)  # inside the benign spread
        with_attack = coordinate_median(np.vstack([benign, attacker]))
        without = coordinate_median(benign)
        shift = np.abs(with_attack - without).mean()
        assert shift > 0.05


ALL_RULES = [
    fedavg,
    coordinate_median,
    trimmed_mean,
    krum,
    multi_krum,
    bulyan,
]


class TestNonFiniteFiltering:
    """Regression: a single NaN/Inf client delta must never reach the
    global model through any aggregation rule."""

    def test_fedavg_filters_nan_row(self):
        updates = np.array([[1.0, 2.0], [3.0, 4.0], [np.nan, 0.0]])
        np.testing.assert_allclose(fedavg(updates), [2.0, 3.0])

    def test_fedavg_filters_inf_row(self):
        updates = np.array([[1.0, 2.0], [3.0, 4.0], [np.inf, 0.0]])
        np.testing.assert_allclose(fedavg(updates), [2.0, 3.0])

    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_every_rule_stays_finite(self, rule, rng):
        updates = rng.standard_normal((6, 8))
        updates[2, 3] = np.nan
        updates[4, 0] = -np.inf
        assert np.isfinite(rule(updates)).all()

    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_all_bad_rows_raise(self, rule):
        updates = np.full((3, 4), np.nan)
        with pytest.raises(ValueError, match="non-finite"):
            rule(updates)

    def test_weighted_fedavg_drops_weight_with_row(self):
        updates = np.array([[0.0], [10.0], [np.nan]])
        agg = weighted_fedavg(updates, np.array([3.0, 1.0, 100.0]))
        np.testing.assert_allclose(agg, [2.5])

    def test_weighted_fedavg_rejects_nonfinite_weights(self, rng):
        updates = rng.standard_normal((3, 2))
        with pytest.raises(ValueError, match="finite"):
            weighted_fedavg(updates, np.array([1.0, np.nan, 1.0]))

    def test_finite_rows_mask(self):
        from repro.fl.aggregation import finite_rows

        updates = np.array([[1.0, 2.0], [np.nan, 0.0], [3.0, np.inf]])
        np.testing.assert_array_equal(finite_rows(updates), [True, False, False])
