"""The Aggregator protocol, its registry, and the new defense rules."""

import warnings

import numpy as np
import pytest

from repro.fl.aggregation import (
    AGGREGATION_RULES,
    Aggregator,
    FoolsGold,
    FunctionAggregator,
    GeometricMedian,
    NormClip,
    RobustLR,
    TrimmedMean,
    aggregator_names,
    build_aggregator,
    bulyan,
    coordinate_median,
    fedavg,
    krum,
    multi_krum,
    trimmed_mean,
)
from repro.fl.server import FederatedServer
from repro.specs import coerce_value, format_spec, parse_spec

NEW_RULES = ("foolsgold", "rfa", "robust_lr", "norm_clip")


class TestSpecParsing:
    def test_bare_name(self):
        assert parse_spec("fedavg") == ("fedavg", {})

    def test_params_coerced(self):
        name, params = parse_spec("norm_clip:budget=1.5,noise_std=0,seed=7")
        assert name == "norm_clip"
        assert params == {"budget": 1.5, "noise_std": 0, "seed": 7}
        assert isinstance(params["noise_std"], int)

    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("true", True),
            ("False", False),
            ("none", None),
            ("null", None),
            ("3", 3),
            ("3.5", 3.5),
            ("hello", "hello"),
        ],
    )
    def test_coerce_value(self, raw, expected):
        assert coerce_value(raw) == expected

    @pytest.mark.parametrize(
        "bad", ["", ":", "name:", "name:x", "name:a=1,a=2", ":a=1"]
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_spec(bad)

    def test_non_string_rejected(self):
        with pytest.raises(TypeError, match="string"):
            parse_spec(42)

    def test_format_round_trips(self):
        spec = format_spec("rfa", {"max_iters": 4, "smoothing": 1e-06})
        assert parse_spec(spec) == ("rfa", {"max_iters": 4, "smoothing": 1e-06})


class TestBuildAggregator:
    def test_all_registered_names_build(self):
        for name in aggregator_names():
            agg = build_aggregator(name)
            assert isinstance(agg, Aggregator)
            assert agg.name == name

    def test_spec_string_sets_params(self):
        agg = build_aggregator("trimmed_mean:trim_ratio=0.2")
        assert isinstance(agg, TrimmedMean)
        assert agg.trim_ratio == 0.2
        assert agg.spec() == "trimmed_mean:trim_ratio=0.2"

    def test_instance_passes_through(self):
        agg = FoolsGold()
        assert build_aggregator(agg) is agg

    def test_callable_wrapped(self):
        agg = build_aggregator(coordinate_median)
        assert isinstance(agg, FunctionAggregator)
        assert agg.name == "coordinate_median"
        u = np.array([[0.0, 1.0], [2.0, 3.0], [4.0, 5.0]])
        np.testing.assert_array_equal(agg(u), coordinate_median(u))

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown aggregator 'nope'"):
            build_aggregator("nope")

    def test_bad_parameter_name(self):
        with pytest.raises(ValueError, match="bad parameters for aggregator"):
            build_aggregator("fedavg:bogus=1")

    def test_bad_parameter_value(self):
        with pytest.raises(ValueError, match="trim_ratio"):
            build_aggregator("trimmed_mean:trim_ratio=0.7")


class TestAggregatorProtocol:
    def test_stateless_state_dict_roundtrip(self):
        agg = build_aggregator("median")
        assert agg.state_dict() == {}
        agg.load_state_dict({})  # accepted
        agg.load_state_dict(None)  # also accepted
        with pytest.raises(ValueError, match="stateless"):
            agg.load_state_dict({"history": {}})

    def test_callable_matches_aggregate(self, rng):
        u = rng.standard_normal((5, 6))
        agg = build_aggregator("rfa")
        np.testing.assert_array_equal(agg(u), agg.aggregate(u))

    def test_repr_carries_spec(self):
        assert "num_byzantine=2" in repr(build_aggregator("krum:num_byzantine=2"))


class TestLegacyRulesView:
    """AGGREGATION_RULES stays a mapping over every registered rule, and
    the six original names still resolve to the original functions."""

    LEGACY = {
        "fedavg": fedavg,
        "median": coordinate_median,
        "trimmed_mean": trimmed_mean,
        "krum": krum,
        "multi_krum": multi_krum,
        "bulyan": bulyan,
    }

    def test_legacy_names_map_to_original_functions(self):
        for name, fn in self.LEGACY.items():
            assert AGGREGATION_RULES[name] is fn

    def test_new_rules_are_callable_members(self, rng):
        u = rng.standard_normal((4, 3))
        for name in NEW_RULES:
            assert name in AGGREGATION_RULES
            assert AGGREGATION_RULES[name](u).shape == (3,)

    def test_iteration_covers_registry(self):
        assert sorted(AGGREGATION_RULES) == aggregator_names()
        assert len(AGGREGATION_RULES) == len(aggregator_names())

    def test_read_only(self):
        with pytest.raises(TypeError):
            AGGREGATION_RULES["custom"] = fedavg


class TestFoolsGold:
    def test_downweights_sybils(self):
        rng = np.random.default_rng(3)
        honest = rng.normal(0, 1.0, (4, 32))
        sybil = np.tile(rng.normal(0, 1.0, (1, 32)), (3, 1))
        updates = np.vstack([honest, sybil])
        fg = FoolsGold()
        for _ in range(3):  # history sharpens the similarity signal
            result = fg.aggregate(updates, client_ids=list(range(7)))
        assert np.isfinite(result).all()
        weights = fg._learning_weights(
            np.stack([fg.history[c] for c in range(7)])
        )
        assert weights[4:].max() < weights[:4].min()

    def test_identical_clients_contribute_nothing(self):
        updates = np.tile(np.arange(4.0), (3, 1))
        result = FoolsGold().aggregate(updates)
        np.testing.assert_array_equal(result, np.zeros(4))

    def test_single_client_passthrough(self):
        u = np.array([[1.0, -2.0, 3.0]])
        np.testing.assert_allclose(FoolsGold().aggregate(u), u[0])

    def test_state_round_trip_bitwise(self, rng):
        fg = FoolsGold()
        for r in range(3):
            fg.aggregate(rng.standard_normal((5, 8)), client_ids=[2, 3, 5, 7, 11])
        clone = FoolsGold()
        clone.load_state_dict(fg.state_dict())
        assert sorted(clone.history) == sorted(fg.history)
        for cid in fg.history:
            assert clone.history[cid].tobytes() == fg.history[cid].tobytes()
        u = rng.standard_normal((5, 8))
        a = fg.aggregate(u, client_ids=[2, 3, 5, 7, 11])
        b = clone.aggregate(u, client_ids=[2, 3, 5, 7, 11])
        assert a.tobytes() == b.tobytes()

    def test_history_keyed_by_client_id_not_row(self, rng):
        fg = FoolsGold()
        fg.aggregate(rng.standard_normal((3, 4)), client_ids=[10, 20, 30])
        fg.aggregate(rng.standard_normal((2, 4)), client_ids=[30, 10])
        assert sorted(fg.history) == [10, 20, 30]

    def test_bad_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            FoolsGold(epsilon=0)


class TestGeometricMedian:
    def test_resists_far_outlier(self):
        rng = np.random.default_rng(5)
        cluster = rng.normal(0, 0.1, (6, 8))
        updates = np.vstack([cluster, np.full((1, 8), 1e6)])
        agg = GeometricMedian().aggregate(updates)
        assert np.abs(agg).max() < 1.0

    def test_single_point_is_fixed_point(self):
        u = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(GeometricMedian().aggregate(u), u[0])

    def test_weiszfeld_beats_mean_on_outlier(self):
        updates = np.vstack([np.zeros((5, 4)), np.full((1, 4), 100.0)])
        gm = GeometricMedian(max_iters=32).aggregate(updates)
        assert np.abs(gm).max() < np.abs(updates.mean(axis=0)).max()

    def test_validation(self):
        with pytest.raises(ValueError, match="max_iters"):
            GeometricMedian(max_iters=0)
        with pytest.raises(ValueError, match="smoothing"):
            GeometricMedian(smoothing=0)


class TestRobustLR:
    def test_flips_low_agreement_coordinates(self):
        # coordinate 0: all agree (+); coordinate 1: split 2/2
        updates = np.array(
            [[1.0, 1.0], [2.0, 1.0], [1.5, -1.0], [0.5, -1.0]]
        )
        agg = RobustLR(threshold=4).aggregate(updates)
        mean = updates.mean(axis=0)
        assert agg[0] == pytest.approx(mean[0])  # consensus kept
        assert agg[1] == pytest.approx(-mean[1])  # flipped

    def test_fractional_threshold(self):
        updates = np.array([[1.0], [1.0], [-1.0]])
        # 2/3 agreement: |sum(sign)| = 1 < ceil(0.9*3) = 3 -> flip
        agg = RobustLR(threshold=0.9).aggregate(updates)
        assert agg[0] == pytest.approx(-updates.mean())

    def test_validation(self):
        with pytest.raises(ValueError, match="fractional threshold"):
            RobustLR(threshold=1.5)
        with pytest.raises(ValueError, match=">= 1"):
            RobustLR(threshold=0)


class TestNormClip:
    def test_clips_oversized_update(self):
        updates = np.vstack([np.ones((3, 4)), np.full((1, 4), 1e6)])
        agg = NormClip(budget=2.0).aggregate(updates)
        assert np.linalg.norm(agg) <= 2.0 + 1e-9

    def test_adaptive_budget_uses_median_norm(self, rng):
        updates = rng.standard_normal((5, 6))
        assert np.isfinite(NormClip().aggregate(updates)).all()

    def test_noise_is_seeded_and_stateful(self):
        u = np.ones((3, 4))
        a, b = NormClip(noise_std=0.1, seed=9), NormClip(noise_std=0.1, seed=9)
        first_a, first_b = a.aggregate(u), b.aggregate(u)
        assert first_a.tobytes() == first_b.tobytes()
        # the stream advances: a second draw differs from the first
        assert a.aggregate(u).tobytes() != first_a.tobytes()

    def test_rng_state_round_trip(self):
        u = np.ones((3, 4))
        a = NormClip(noise_std=0.1, seed=9)
        a.aggregate(u)
        clone = NormClip(noise_std=0.1, seed=9)
        clone.load_state_dict(a.state_dict())
        assert clone.aggregate(u).tobytes() == a.aggregate(u).tobytes()

    def test_validation(self):
        with pytest.raises(ValueError, match="budget"):
            NormClip(budget=0.0)
        with pytest.raises(ValueError, match="noise_std"):
            NormClip(noise_std=-1.0)


class TestNonFiniteFilteringNewRules:
    @pytest.mark.parametrize("name", NEW_RULES)
    def test_new_rules_stay_finite(self, name, rng):
        updates = rng.standard_normal((6, 8))
        updates[1, 2] = np.nan
        updates[3, 0] = np.inf
        agg = build_aggregator(name)
        assert np.isfinite(agg.aggregate(updates)).all()

    def test_foolsgold_filtered_row_leaves_no_history(self, rng):
        updates = rng.standard_normal((3, 4))
        updates[1, 0] = np.nan
        fg = FoolsGold()
        fg.aggregate(updates, client_ids=[7, 8, 9])
        assert sorted(fg.history) == [7, 9]


class TestDeprecatedAggregateKwarg:
    def test_server_warns_and_still_works(self, tiny_world):
        model, clients, dataset = tiny_world
        with pytest.warns(DeprecationWarning, match="aggregate=.*deprecated"):
            server = FederatedServer(
                model, clients, dataset, aggregate=coordinate_median
            )
        assert isinstance(server.aggregator, FunctionAggregator)
        assert server.aggregate is server.aggregator

    def test_both_kwargs_rejected(self, tiny_world):
        model, clients, dataset = tiny_world
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="mutually exclusive"):
                FederatedServer(
                    model,
                    clients,
                    dataset,
                    aggregate=coordinate_median,
                    aggregator="median",
                )

    def test_aggregator_spec_accepted(self, tiny_world):
        model, clients, dataset = tiny_world
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            server = FederatedServer(
                model, clients, dataset, aggregator="foolsgold"
            )
        assert isinstance(server.aggregator, FoolsGold)


@pytest.fixture
def tiny_world():
    from tests.fl.test_resume import make_world

    return make_world()
