"""Stateful aggregators under checkpoint resume and executor parity.

Two contracts on top of the kill-and-resume guarantees of
``test_resume.py``:

* a server using a *stateful* aggregation rule (FoolsGold history,
  NormClip's noise RNG) that is killed mid-run and resumed from its
  newest snapshot is byte-identical to an uninterrupted run — the
  aggregator's cross-round state rides in the snapshot;
* every new rule produces a canonical telemetry stream (and final
  parameters) byte-identical across serial / thread / process /
  megabatch engines, because aggregation happens on the coordinator.
"""

import numpy as np
import pytest

from repro.fl.aggregation import FoolsGold, NormClip, build_aggregator
from repro.fl.executor import (
    MegabatchExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.fl.server import FederatedServer
from repro.obs.schema import dumps_canonical, unknown_names
from repro.obs.sinks import RingBufferSink
from repro.obs.telemetry import Telemetry
from repro.persist import CheckpointManager, stitch_streams

from tests.fl.test_resume import SimulatedCrash, make_world

NUM_ROUNDS = 5
CHECKPOINT_EVERY = 2
CRASH_AT_AGGREGATION = 4  # dies mid round 3, after the round-2 snapshot


class CrashingFoolsGold(FoolsGold):
    """FoolsGold that dies on its Nth aggregation (stands in for SIGKILL)."""

    def __init__(self, crash_at: int) -> None:
        super().__init__()
        self._crash_at = crash_at
        self._calls = 0

    def aggregate(self, updates, **kwargs):
        self._calls += 1
        if self._calls == self._crash_at:
            raise SimulatedCrash(f"killed at aggregation {self._calls}")
        return super().aggregate(updates, **kwargs)


class CrashingNormClip(NormClip):
    def __init__(self, crash_at: int) -> None:
        super().__init__(noise_std=1e-3, seed=23)
        self._crash_at = crash_at
        self._calls = 0

    def aggregate(self, updates, **kwargs):
        self._calls += 1
        if self._calls == self._crash_at:
            raise SimulatedCrash(f"killed at aggregation {self._calls}")
        return super().aggregate(updates, **kwargs)


STATEFUL = [
    pytest.param(
        lambda: FoolsGold(),
        lambda: CrashingFoolsGold(CRASH_AT_AGGREGATION),
        id="foolsgold",
    ),
    pytest.param(
        lambda: NormClip(noise_std=1e-3, seed=23),
        lambda: CrashingNormClip(CRASH_AT_AGGREGATION),
        id="norm_clip",
    ),
]


def run_to_completion(aggregator, checkpoint=None, resume=False):
    model, clients, dataset = make_world()
    hub = Telemetry()
    ring = hub.add_sink(RingBufferSink())
    server = FederatedServer(
        model, clients, dataset, telemetry=hub, aggregator=aggregator
    )
    history = server.train(
        NUM_ROUNDS,
        checkpoint=checkpoint,
        checkpoint_every=CHECKPOINT_EVERY,
        resume=resume,
    )
    hub.close()
    return model.flat_parameters(), list(ring.events), history


class TestStatefulAggregatorResume:
    @pytest.mark.parametrize("make_rule,make_crashing", STATEFUL)
    def test_resumed_run_is_byte_identical(
        self, tmp_path, make_rule, make_crashing
    ):
        ref_params, ref_events, ref_history = run_to_completion(
            make_rule(), checkpoint=CheckpointManager(tmp_path / "ref_ckpt")
        )
        manager = CheckpointManager(tmp_path / "ckpt")

        # attempt 1: killed mid round 3 (round-2 snapshot exists, with
        # two rounds of aggregator state already accumulated)
        model, clients, dataset = make_world()
        hub1 = Telemetry()
        ring1 = hub1.add_sink(RingBufferSink())
        server = FederatedServer(
            model, clients, dataset, telemetry=hub1,
            aggregator=make_crashing(),
        )
        with pytest.raises(SimulatedCrash):
            server.train(
                NUM_ROUNDS,
                checkpoint=manager,
                checkpoint_every=CHECKPOINT_EVERY,
            )
        hub1.close()

        snapshot = manager.load_latest("train")
        assert snapshot is not None and snapshot.step < NUM_ROUNDS
        resume_seq = snapshot.meta["telemetry"]["seq"]

        # attempt 2: fresh world, FRESH aggregator instance — its state
        # must come entirely from the snapshot
        params2, events2, history2 = run_to_completion(
            make_rule(), checkpoint=manager, resume=True
        )

        assert params2.tobytes() == ref_params.tobytes()
        assert history2.to_jsonable() == ref_history.to_jsonable()
        stitched = stitch_streams([ring1.events, events2], [resume_seq])
        assert dumps_canonical(stitched) == dumps_canonical(ref_events)

    def test_foolsgold_history_lands_in_snapshot_arrays(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        run_to_completion(FoolsGold(), checkpoint=manager)
        snapshot = manager.load_latest("train")
        keys = [
            k for k in snapshot.arrays if k.startswith("aggregator_state.")
        ]
        assert keys, "FoolsGold history missing from the snapshot arrays"
        assert "history" in snapshot.meta["aggregator"]

    def test_stateless_aggregator_snapshot_stays_lean(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        run_to_completion("median", checkpoint=manager)
        snapshot = manager.load_latest("train")
        assert snapshot.meta["aggregator"] == {}
        assert not any(
            k.startswith("aggregator_state.") for k in snapshot.arrays
        )

    def test_old_snapshot_without_aggregator_state_still_restores(
        self, tmp_path
    ):
        """Forward compatibility: pre-zoo snapshots lack the key."""
        manager = CheckpointManager(tmp_path / "ckpt")
        run_to_completion("fedavg", checkpoint=manager)
        snapshot = manager.load_latest("train")
        meta = dict(snapshot.meta)
        meta.pop("aggregator")
        stripped = type(snapshot)(
            snapshot.kind, snapshot.step, snapshot.arrays, meta,
            snapshot.path, snapshot.checksum,
        )
        model, clients, dataset = make_world()
        server = FederatedServer(model, clients, dataset)
        server.restore_checkpoint(stripped)


EXECUTORS = [
    pytest.param(lambda: SerialExecutor(), id="serial"),
    pytest.param(lambda: ThreadExecutor(num_workers=2), id="thread"),
    pytest.param(lambda: ProcessExecutor(num_workers=2), id="process"),
    pytest.param(lambda: MegabatchExecutor(wave_size=4), id="megabatch"),
]

PARITY_RULES = [
    "foolsgold",
    "rfa",
    "robust_lr",
    "norm_clip:noise_std=0.001",
    "multi_krum:num_byzantine=1",
]


class TestExecutorParity:
    """Aggregation is coordinator-side: identical bytes on every engine."""

    def _run(self, rule, executor_factory):
        model, clients, dataset = make_world()
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        with executor_factory() as executor:
            server = FederatedServer(
                model,
                clients,
                dataset,
                executor=executor,
                telemetry=hub,
                aggregator=build_aggregator(rule),
            )
            server.train(3)
        hub.close()
        return model.flat_parameters().tobytes(), ring.events

    @pytest.mark.parametrize("rule", PARITY_RULES)
    def test_canonical_stream_and_params_identical(self, rule):
        ref_params, ref_events = self._run(rule, lambda: SerialExecutor())
        assert unknown_names(ref_events) == []
        ref_stream = dumps_canonical(ref_events)
        for factory in EXECUTORS[1:]:
            params, events = self._run(rule, factory.values[0])
            assert params == ref_params, factory.id
            assert dumps_canonical(events) == ref_stream, factory.id
