"""Tests for benign and malicious federated clients."""

import numpy as np
import pytest

from repro.attacks.poison import BackdoorTask
from repro.attacks.triggers import pixel_pattern
from repro.data.dataset import Dataset
from repro.fl.client import Client, LocalTrainingConfig, MaliciousClient


@pytest.fixture
def config():
    return LocalTrainingConfig(lr=0.05, momentum=0.0, batch_size=16, local_epochs=1)


@pytest.fixture
def task():
    return BackdoorTask(pixel_pattern(3, 8), victim_label=4, attack_label=0)


@pytest.fixture
def local_data(rng):
    images = rng.random((40, 1, 8, 8)) * 0.5
    labels = np.repeat(np.arange(5), 8)
    return Dataset(images, labels)


class TestBenignClient:
    def test_local_update_shape(self, tiny_cnn, local_data, config, rng):
        client = Client(0, local_data, config, rng)
        params = tiny_cnn.flat_parameters()
        delta = client.local_update(tiny_cnn, params)
        assert delta.shape == params.shape
        assert np.abs(delta).max() > 0  # training moved something

    def test_update_is_delta_from_global(self, tiny_cnn, local_data, config, rng):
        client = Client(0, local_data, config, rng)
        params = tiny_cnn.flat_parameters()
        delta = client.local_update(tiny_cnn, params)
        np.testing.assert_allclose(
            tiny_cnn.flat_parameters(), params + delta, atol=1e-6
        )

    def test_empty_dataset_zero_update(self, tiny_cnn, config, rng):
        empty = Dataset(np.zeros((0, 1, 8, 8)), np.zeros(0, dtype=int))
        client = Client(0, empty, config, rng)
        params = tiny_cnn.flat_parameters()
        np.testing.assert_array_equal(client.local_update(tiny_cnn, params), 0.0)

    def test_ranking_report_is_permutation(self, tiny_cnn, local_data, config, rng):
        client = Client(0, local_data, config, rng)
        layer = tiny_cnn.last_conv()
        ranking = client.ranking_report(tiny_cnn, layer)
        np.testing.assert_array_equal(
            np.sort(ranking), np.arange(layer.out_channels)
        )

    def test_vote_report_budget(self, tiny_cnn, local_data, config, rng):
        client = Client(0, local_data, config, rng)
        votes = client.vote_report(tiny_cnn, tiny_cnn.last_conv(), prune_rate=0.5)
        assert votes.sum() == 3  # 50% of 6 channels

    def test_accuracy_report_in_range(self, tiny_cnn, local_data, config, rng):
        client = Client(0, local_data, config, rng)
        assert 0.0 <= client.accuracy_report(tiny_cnn) <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LocalTrainingConfig(local_epochs=0)


class TestMaliciousClient:
    def test_gamma_scales_update(self, tiny_cnn, local_data, config, task):
        params = tiny_cnn.flat_parameters()
        base = MaliciousClient(
            0, local_data, config, np.random.default_rng(0), task, gamma=1.0
        )
        amplified = MaliciousClient(
            0, local_data, config, np.random.default_rng(0), task, gamma=4.0
        )
        delta1 = base.local_update(tiny_cnn, params.copy())
        delta4 = amplified.local_update(tiny_cnn, params.copy())
        np.testing.assert_allclose(delta4, 4.0 * delta1, rtol=1e-4, atol=1e-5)

    def test_trains_on_poisoned_data(self, local_data, config, task, rng):
        client = MaliciousClient(0, local_data, config, rng, task)
        data = client._training_data()
        assert len(data) > len(local_data)  # poisoned copies appended

    def test_attack_start_round_defers(self, tiny_cnn, local_data, config, task):
        client = MaliciousClient(
            0,
            local_data,
            config,
            np.random.default_rng(0),
            task,
            gamma=5.0,
            attack_start_round=3,
        )
        params = tiny_cnn.flat_parameters()
        client.local_update(tiny_cnn, params.copy(), round_index=1)
        assert not client._attacking_now
        client.local_update(tiny_cnn, params.copy(), round_index=3)
        assert client._attacking_now

    def test_no_round_index_means_attack(self, tiny_cnn, local_data, config, task, rng):
        client = MaliciousClient(
            0, local_data, config, rng, task, attack_start_round=100
        )
        client.local_update(tiny_cnn, tiny_cnn.flat_parameters())
        assert client._attacking_now

    def test_lies_about_accuracy(self, tiny_cnn, local_data, config, task, rng):
        client = MaliciousClient(0, local_data, config, rng, task)
        assert client.accuracy_report(tiny_cnn) == 1.0

    def test_rank_attack_changes_report(self, tiny_cnn, local_data, config, task):
        honest = MaliciousClient(
            0, local_data, config, np.random.default_rng(0), task, rank_attack=False
        )
        attacking = MaliciousClient(
            0, local_data, config, np.random.default_rng(0), task, rank_attack=True
        )
        layer = tiny_cnn.last_conv()
        honest_rank = honest.ranking_report(tiny_cnn, layer)
        attacked_rank = attacking.ranking_report(tiny_cnn, layer)
        # both are permutations; the attacked one fronts the protected
        # channel (which may coincide with the honest front)
        np.testing.assert_array_equal(np.sort(attacked_rank), np.sort(honest_rank))
        protected = attacking._protected_channels(tiny_cnn, layer)
        assert attacked_rank[0] == protected[0]

    def test_self_limit_clips_weights(self, tiny_cnn, local_data, config, task, rng):
        client = MaliciousClient(
            0, local_data, config, rng, task, self_limit_delta=1.0
        )
        client.local_update(tiny_cnn, tiny_cnn.flat_parameters())
        w = tiny_cnn.last_conv().weight.data
        # weights clamped within ~1 sigma of the post-training distribution
        assert w.max() <= w.mean() + 3.0 * w.std() + 1e-6
