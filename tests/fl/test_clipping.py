"""Tests for the norm-clipping training-phase defense."""

import numpy as np
import pytest

from repro.fl.clipping import clip_updates, clipped_fedavg, median_norm_budget


class TestMedianNormBudget:
    def test_median(self):
        updates = np.array([[3.0, 4.0], [0.0, 1.0], [0.0, 2.0]])  # norms 5,1,2
        assert median_norm_budget(updates) == 2.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            median_norm_budget(np.zeros((0, 3)))


class TestClipUpdates:
    def test_large_rows_scaled_to_budget(self):
        updates = np.array([[3.0, 4.0], [0.3, 0.4]])
        clipped = clip_updates(updates, budget=1.0)
        np.testing.assert_allclose(np.linalg.norm(clipped[0]), 1.0)
        np.testing.assert_allclose(clipped[1], [0.3, 0.4])  # within budget

    def test_direction_preserved(self, rng):
        update = rng.standard_normal((1, 10)) * 100
        clipped = clip_updates(update, budget=1.0)
        cosine = (update @ clipped.T) / (
            np.linalg.norm(update) * np.linalg.norm(clipped)
        )
        assert cosine[0, 0] == pytest.approx(1.0)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            clip_updates(np.ones((2, 2)), budget=0.0)


class TestClippedFedAvg:
    def test_neutralizes_amplified_update(self):
        """A gamma-amplified malicious delta is reduced to benign scale."""
        rng = np.random.default_rng(0)
        benign = rng.normal(0, 0.1, (9, 20))
        malicious = benign[0] * 30.0  # model-replacement-style amplification
        updates = np.vstack([benign, malicious[None]])

        plain = np.linalg.norm(
            updates.mean(axis=0) - benign.mean(axis=0)
        )
        aggregate = clipped_fedavg()  # adaptive median budget
        clipped = np.linalg.norm(
            aggregate(updates) - benign.mean(axis=0)
        )
        assert clipped < plain / 3.0

    def test_noise_added(self):
        rng = np.random.default_rng(1)
        aggregate = clipped_fedavg(budget=10.0, noise_std=0.5, rng=rng)
        updates = np.zeros((4, 50))
        out = aggregate(updates)
        assert out.std() > 0.2  # pure noise

    def test_zero_noise_deterministic(self):
        aggregate = clipped_fedavg(budget=1.0)
        updates = np.ones((3, 4))
        np.testing.assert_array_equal(aggregate(updates), aggregate(updates))

    def test_noise_requires_rng(self):
        with pytest.raises(ValueError, match="requires an rng"):
            clipped_fedavg(noise_std=0.1)

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            clipped_fedavg(noise_std=-1.0)
