"""Determinism tests for the pluggable client-execution engine.

The contract under test (see ``src/repro/fl/executor.py``): serial,
thread and process execution produce **bitwise identical** results —
model parameters, metric traces, and the full fault log — for training
rounds, defense report collection and federated fine-tuning, with and
without injected client faults.
"""

import numpy as np
import pytest

from repro import nn
from repro.data.dataset import Dataset
from repro.defense.fine_tune import federated_fine_tune
from repro.defense.pipeline import DefenseConfig, DefensePipeline
from repro.defense.pruning import client_feedback_accuracy
from repro.fl.client import Client, LocalTrainingConfig
from repro.fl.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    collect_updates,
)
from repro.fl.faults import FaultModel, wrap_clients
from repro.fl.server import FederatedServer
from repro.obs import RingBufferSink, RunContext, Telemetry, dumps_canonical


# pools are module-scoped: process spawn is expensive (seconds per
# worker on a busy box) and the pools are stateless between tests
@pytest.fixture(scope="module")
def thread_executor():
    with ThreadExecutor(num_workers=2) as executor:
        yield executor


@pytest.fixture(scope="module")
def process_executor():
    with ProcessExecutor(num_workers=2) as executor:
        yield executor


@pytest.fixture
def all_executors(thread_executor, process_executor):
    """(name, executor) trio; None exercises the default serial path."""
    return [
        ("serial", None),
        ("thread", thread_executor),
        ("process", process_executor),
    ]


def build_world(seed=5, num_clients=4):
    """A fresh, fully seeded federation — identical on every call."""
    data_rng = np.random.default_rng(seed)
    images = data_rng.random((48, 1, 8, 8))
    labels = np.repeat(np.arange(4), 12)
    dataset = Dataset(images, labels)
    config = LocalTrainingConfig(
        lr=0.05, momentum=0.5, batch_size=12, local_epochs=1
    )
    chunks = np.array_split(np.arange(len(dataset)), num_clients)
    clients = [
        Client(i, dataset.subset(chunk), config, np.random.default_rng(100 + i))
        for i, chunk in enumerate(chunks)
    ]
    model_rng = np.random.default_rng(seed + 1)
    model = nn.Sequential(
        nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=model_rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(4 * 4 * 4, 4, rng=model_rng),
    )
    return model, clients, dataset


def run_training(executor, rounds=2, faults=None, **server_kwargs):
    model, clients, dataset = build_world()
    if faults is not None:
        clients = wrap_clients(clients, FaultModel(**faults))
    server = FederatedServer(
        model, clients, dataset, executor=executor, **server_kwargs
    )
    history = server.train(rounds)
    return model.flat_parameters(), history


def history_log(history):
    """Everything a TrainingHistory records, as comparable tuples."""
    return [
        (
            r.round_index,
            r.test_acc,
            r.num_selected,
            r.num_accepted,
            tuple(r.dropped),
            tuple(r.rejected),
            tuple(r.quarantined),
            r.skipped,
        )
        for r in history.rounds
    ]


def _square(x):
    return x * x


def _raise_on_three(x):
    if x == 3:
        raise RuntimeError("task three failed")
    return x


class TestMapClients:
    def test_results_in_item_order(self, all_executors):
        items = [5, 3, 8, 1, 9, 2]
        for name, executor in all_executors:
            executor = executor or SerialExecutor()
            assert executor.map_clients(_square, items) == [
                25, 9, 64, 1, 81, 4,
            ], name

    def test_exceptions_propagate(self, all_executors):
        for name, executor in all_executors:
            executor = executor or SerialExecutor()
            with pytest.raises(RuntimeError, match="task three"):
                executor.map_clients(_raise_on_three, [1, 2, 3, 4])

    @pytest.mark.parametrize("cls", [ThreadExecutor, ProcessExecutor])
    def test_invalid_worker_count(self, cls):
        with pytest.raises(ValueError, match="num_workers"):
            cls(num_workers=0)

    def test_context_manager_closes_pool(self):
        with ThreadExecutor(num_workers=2) as executor:
            executor.map_clients(_square, [1, 2, 3])
            assert executor._pool is not None
        assert executor._pool is None


class TestTrainingDeterminism:
    def test_fault_free_bitwise_identical(self, all_executors):
        results = {
            name: run_training(executor) for name, executor in all_executors
        }
        baseline_params, baseline_history = results["serial"]
        for name, (params, history) in results.items():
            np.testing.assert_array_equal(params, baseline_params, err_msg=name)
            assert history_log(history) == history_log(baseline_history), name

    def test_faulty_bitwise_identical(self, all_executors):
        faults = dict(
            dropout_prob=0.25,
            straggler_prob=0.2,
            corrupt_prob=0.15,
            stale_prob=0.1,
            report_fault_prob=0.2,
            seed=17,
        )
        results = {
            name: run_training(
                executor,
                rounds=4,
                faults=faults,
                update_retries=1,
                max_client_strikes=2,
            )
            for name, executor in all_executors
        }
        baseline_params, baseline_history = results["serial"]
        # the seeded schedule actually exercised the fault paths
        assert baseline_history.num_dropouts > 0
        for name, (params, history) in results.items():
            np.testing.assert_array_equal(params, baseline_params, err_msg=name)
            assert history_log(history) == history_log(baseline_history), name

    def test_zero_rates_neutral_under_parallel(self, thread_executor):
        plain_params, plain_history = run_training(None)
        wrapped_params, wrapped_history = run_training(
            thread_executor, faults=dict(seed=17)
        )
        np.testing.assert_array_equal(wrapped_params, plain_params)
        assert history_log(wrapped_history) == history_log(plain_history)

    def test_collect_updates_rng_round_trip(self, process_executor):
        """Worker-side RNG consumption must advance the coordinator's copy."""
        model, clients, _ = build_world()
        states = []
        for _ in range(2):  # same call twice: streams must keep moving
            collect_updates(
                process_executor, clients, model, model.flat_parameters()
            )
            states.append([c.rng.bit_generator.state["state"] for c in clients])
        assert states[0] != states[1]


class TestDefenseDeterminism:
    @pytest.mark.parametrize("method", ["rap", "mvp"])
    def test_pipeline_bitwise_identical(self, method, all_executors):
        def run(executor):
            model, clients, dataset = build_world()
            clients = wrap_clients(
                clients, FaultModel(report_fault_prob=0.3, seed=23)
            )
            pipeline = DefensePipeline(
                clients,
                lambda m: 0.9,  # accuracy oracle that never stops pruning
                DefenseConfig(
                    method=method, fine_tune=True, fine_tune_rounds=2
                ),
                executor=executor,
            )
            report = pipeline.run(model)
            return model.flat_parameters(), report, pipeline.events

        results = {name: run(executor) for name, executor in all_executors}
        base_params, base_report, base_events = results["serial"]
        for name, (params, report, events) in results.items():
            np.testing.assert_array_equal(params, base_params, err_msg=name)
            assert report.pruning.pruned_channels == base_report.pruning.pruned_channels
            assert events == base_events, name

    def test_fine_tune_bitwise_identical(self, all_executors):
        def run(executor):
            model, clients, dataset = build_world()
            result = federated_fine_tune(
                model,
                clients,
                lambda m: float(m.flat_parameters()[0]),
                max_rounds=2,
                executor=executor,
            )
            return model.flat_parameters(), result.accuracy_trace

        results = {name: run(executor) for name, executor in all_executors}
        base_params, base_trace = results["serial"]
        for name, (params, trace) in results.items():
            np.testing.assert_array_equal(params, base_params, err_msg=name)
            assert trace == base_trace, name

    def test_client_feedback_accuracy_parallel(
        self, tiny_cnn, all_executors
    ):
        model, clients, _ = build_world()
        values = {
            name: client_feedback_accuracy(clients, model, executor)
            for name, executor in all_executors
        }
        assert len(set(values.values())) == 1


class TestTelemetryParity:
    """The canonical event stream is part of the determinism contract:
    byte-identical (timestamps stripped) across every execution engine."""

    def _traced_training(self, executor):
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        model, clients, dataset = build_world()
        faults = FaultModel(
            dropout_prob=0.2, corrupt_prob=0.15, stale_prob=0.1, seed=17
        )
        faults.telemetry = hub
        clients = wrap_clients(clients, faults)
        server = FederatedServer(
            model,
            clients,
            dataset,
            executor=executor,
            update_retries=1,
            max_client_strikes=2,
            telemetry=hub,
        )
        server.train(3)
        hub.close()
        return dumps_canonical(ring.events)

    def test_training_stream_byte_identical(self, all_executors):
        streams = {
            name: self._traced_training(executor)
            for name, executor in all_executors
        }
        assert streams["serial"]  # non-empty
        assert streams["thread"] == streams["serial"]
        assert streams["process"] == streams["serial"]

    def test_defense_stream_byte_identical(self, all_executors):
        def run(executor):
            hub = Telemetry()
            ring = hub.add_sink(RingBufferSink())
            model, clients, _ = build_world()
            faults = FaultModel(report_fault_prob=0.3, seed=23)
            faults.telemetry = hub
            clients = wrap_clients(clients, faults)
            pipeline = DefensePipeline(
                clients,
                lambda m: 0.9,
                DefenseConfig(method="mvp", fine_tune=True, fine_tune_rounds=2),
                context=RunContext(telemetry=hub, executor=executor),
            )
            pipeline.run(model)
            hub.close()
            return dumps_canonical(ring.events)

        streams = {name: run(executor) for name, executor in all_executors}
        assert streams["serial"]
        assert streams["thread"] == streams["serial"]
        assert streams["process"] == streams["serial"]


# -- worker watchdog ---------------------------------------------------
#
# The task bodies below must be module-level (spawn pickles them by
# qualified name) and communicate across process boundaries through
# flag files: the first execution of a task dies or hangs, re-dispatch
# finds the flag and completes.


def _kill_once(task):
    import os
    import signal

    value, flag = task
    if not os.path.exists(flag):
        with open(flag, "w") as handle:
            handle.write("died")
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def _hang_once(task):
    import os
    import time

    value, flag = task
    if not os.path.exists(flag):
        with open(flag, "w") as handle:
            handle.write("hung")
        time.sleep(120)
    return value * 2


def _always_die(_task):
    import os
    import signal

    os.kill(os.getpid(), signal.SIGKILL)


class TestWorkerWatchdog:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="task_timeout"):
            ProcessExecutor(num_workers=1, task_timeout=0)
        with pytest.raises(ValueError, match="max_task_retries"):
            ProcessExecutor(num_workers=1, max_task_retries=-1)

    def test_killed_worker_recovers_completed_results(self, tmp_path):
        """SIGKILL mid-wave: survivors kept, casualty re-dispatched."""
        flag = str(tmp_path / "killed.flag")
        with ProcessExecutor(num_workers=2) as executor:
            results = executor.map_clients(
                _kill_once, [(i, flag) for i in range(4)]
            )
            assert results == [0, 2, 4, 6]
            assert executor.redispatches >= 1
            # the rebuilt pool keeps serving later waves
            assert executor.map_clients(_square, [3]) == [9]

    @pytest.mark.slow
    def test_hung_worker_past_deadline_is_re_dispatched(self, tmp_path):
        flag = str(tmp_path / "hung.flag")
        with ProcessExecutor(num_workers=2, task_timeout=3.0) as executor:
            results = executor.map_clients(
                _hang_once, [(i, flag) for i in range(2)]
            )
            assert results == [0, 2]
            assert executor.redispatches >= 1

    def test_gives_up_after_retry_budget(self):
        with ProcessExecutor(num_workers=1, max_task_retries=0) as executor:
            with pytest.raises(RuntimeError, match="re-dispatch"):
                executor.map_clients(_always_die, [1])
