"""Tests for the fault-injection layer (FaultModel / FaultyClient)."""

import numpy as np
import pytest

from repro.defense.ranking import validate_ranking_report, validate_vote_report
from repro.fl.client import Client, LocalTrainingConfig
from repro.fl.faults import (
    ClientDropout,
    ClientTimeout,
    FaultModel,
    FaultyClient,
    validate_update,
    wrap_clients,
)


def make_client(dataset, client_id=0):
    config = LocalTrainingConfig(lr=0.05, momentum=0.5, batch_size=16, local_epochs=1)
    return Client(client_id, dataset, config, np.random.default_rng(7))


class TestFaultModel:
    def test_same_seed_same_schedule(self):
        draws = []
        for _ in range(2):
            faults = FaultModel(dropout_prob=0.5, straggler_prob=0.5, seed=3)
            draws.append(
                [(faults.draw_dropout(), faults.draw_delay()) for _ in range(20)]
            )
        assert draws[0] == draws[1]

    def test_zero_rates_never_fire(self):
        faults = FaultModel(seed=0)
        for _ in range(50):
            assert not faults.draw_dropout()
            assert faults.draw_delay() == 0.0
            assert not faults.draw_stale()
            assert faults.draw_corruption() is None
            assert faults.draw_report_fault() is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="dropout_prob"):
            FaultModel(dropout_prob=1.5)
        with pytest.raises(ValueError, match="deadline_seconds"):
            FaultModel(deadline_seconds=0.0)
        with pytest.raises(ValueError, match="corrupt_kinds"):
            FaultModel(corrupt_kinds=("nan", "bogus"))
        with pytest.raises(ValueError, match="report_kinds"):
            FaultModel(report_kinds=())

    @pytest.mark.parametrize("kind", ["nan", "inf", "shape"])
    def test_corruptions_fail_validation(self, kind):
        faults = FaultModel(seed=1)
        delta = np.zeros(200, dtype=np.float32)
        bad = faults.corrupt_update(delta, kind)
        assert validate_update(bad, delta.size) is not None

    @pytest.mark.parametrize("kind", ["truncated", "garbage"])
    def test_report_corruptions_fail_validation(self, kind):
        faults = FaultModel(seed=1)
        ranking = np.argsort(np.arange(8))
        votes = np.zeros(8, dtype=np.int64)
        votes[:4] = 1
        assert validate_ranking_report(faults.corrupt_ranking(ranking, kind), 8)
        assert validate_vote_report(faults.corrupt_votes(votes, kind), 8)


class TestValidateUpdate:
    def test_accepts_well_formed(self):
        assert validate_update(np.zeros(10, dtype=np.float32), 10) is None

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            [0.0] * 10,
            np.zeros((2, 5)),
            np.zeros(9),
            np.zeros(10, dtype=np.int64),
            np.full(10, np.nan),
            np.full(10, np.inf),
        ],
    )
    def test_rejects_malformed(self, payload):
        assert validate_update(payload, 10) is not None


class TestFaultyClient:
    def test_transparent_when_fault_free(self, tiny_cnn, tiny_dataset):
        params = tiny_cnn.flat_parameters()
        plain = make_client(tiny_dataset)
        wrapped = FaultyClient(make_client(tiny_dataset), FaultModel(seed=0))
        delta_plain = plain.local_update(tiny_cnn, params)
        delta_wrapped = wrapped.local_update(tiny_cnn, params)
        np.testing.assert_array_equal(delta_plain, delta_wrapped)

    def test_delegates_inner_attributes(self, tiny_dataset):
        wrapped = FaultyClient(make_client(tiny_dataset, client_id=5), FaultModel())
        assert wrapped.client_id == 5
        assert wrapped.num_samples == len(tiny_dataset)

    def test_dropout_raises(self, tiny_cnn, tiny_dataset):
        wrapped = FaultyClient(
            make_client(tiny_dataset), FaultModel(dropout_prob=1.0, seed=0)
        )
        with pytest.raises(ClientDropout):
            wrapped.local_update(tiny_cnn, tiny_cnn.flat_parameters())

    def test_straggler_past_deadline_times_out(self, tiny_cnn, tiny_dataset):
        faults = FaultModel(
            straggler_prob=1.0, straggler_delay=(20.0, 30.0), deadline_seconds=10.0
        )
        wrapped = FaultyClient(make_client(tiny_dataset), faults)
        with pytest.raises(ClientTimeout):
            wrapped.local_update(tiny_cnn, tiny_cnn.flat_parameters())

    def test_straggler_within_deadline_responds(self, tiny_cnn, tiny_dataset):
        faults = FaultModel(
            straggler_prob=1.0, straggler_delay=(1.0, 2.0), deadline_seconds=10.0
        )
        wrapped = FaultyClient(make_client(tiny_dataset), faults)
        delta = wrapped.local_update(tiny_cnn, tiny_cnn.flat_parameters())
        assert validate_update(delta, delta.size) is None

    def test_stale_replays_previous_delta(self, tiny_cnn, tiny_dataset):
        wrapped = FaultyClient(
            make_client(tiny_dataset), FaultModel(stale_prob=1.0, seed=0)
        )
        params = tiny_cnn.flat_parameters()
        first = wrapped.local_update(tiny_cnn, params)  # nothing cached yet
        replayed = wrapped.local_update(tiny_cnn, params + 0.01)
        np.testing.assert_array_equal(first, replayed)

    def test_corrupted_update_is_rejected_by_validator(self, tiny_cnn, tiny_dataset):
        wrapped = FaultyClient(
            make_client(tiny_dataset), FaultModel(corrupt_prob=1.0, seed=2)
        )
        params = tiny_cnn.flat_parameters()
        delta = wrapped.local_update(tiny_cnn, params)
        assert validate_update(delta, params.size) is not None

    def test_missing_report_raises(self, tiny_cnn, tiny_dataset):
        faults = FaultModel(report_fault_prob=1.0, report_kinds=("missing",))
        wrapped = FaultyClient(make_client(tiny_dataset), faults)
        layer = tiny_cnn.last_conv()
        with pytest.raises(ClientDropout):
            wrapped.ranking_report(tiny_cnn, layer)
        with pytest.raises(ClientDropout):
            wrapped.vote_report(tiny_cnn, layer, 0.5)

    def test_garbage_reports_fail_validation(self, tiny_cnn, tiny_dataset):
        faults = FaultModel(report_fault_prob=1.0, report_kinds=("garbage",))
        wrapped = FaultyClient(make_client(tiny_dataset), faults)
        layer = tiny_cnn.last_conv()
        channels = layer.out_channels
        assert validate_ranking_report(wrapped.ranking_report(tiny_cnn, layer), channels)
        assert validate_vote_report(wrapped.vote_report(tiny_cnn, layer, 0.5), channels)

    def test_wrap_clients(self, tiny_dataset):
        faults = FaultModel(seed=0)
        clients = [make_client(tiny_dataset, client_id=i) for i in range(3)]
        wrapped = wrap_clients(clients, faults)
        assert [w.client_id for w in wrapped] == [0, 1, 2]
        assert all(w.faults is faults for w in wrapped)


class TestFaultModelState:
    def _busy_model(self):
        model = FaultModel(
            dropout_prob=0.3, corrupt_prob=0.2, stale_prob=0.1, seed=9
        )
        for _ in range(7):
            model.draw_dropout()
            model.draw_corruption()
        return model

    def test_round_trip_replays_remaining_schedule(self):
        import json

        model = self._busy_model()
        state = json.loads(json.dumps(model.state_dict()))
        counts_at_capture = dict(model.draw_counts)
        expected = [
            (model.draw_dropout(), model.draw_corruption()) for _ in range(5)
        ]

        fresh = FaultModel(
            dropout_prob=0.3, corrupt_prob=0.2, stale_prob=0.1, seed=9
        )
        fresh.load_state_dict(state)
        assert fresh.draw_counts == counts_at_capture
        replay = [
            (fresh.draw_dropout(), fresh.draw_corruption()) for _ in range(5)
        ]
        assert replay == expected

    def test_seed_mismatch_rejected(self):
        donor = FaultModel(dropout_prob=0.1, seed=2)
        receiver = FaultModel(dropout_prob=0.1, seed=1)
        with pytest.raises(ValueError, match="seed"):
            receiver.load_state_dict(donor.state_dict())
