"""Parity tests for the vectorized megabatch execution engine.

The contract under test (see ``src/repro/nn/megabatch.py`` and
``MegabatchExecutor`` in ``src/repro/fl/executor.py``): running a wave
of homogeneous clients as one batched tensor pass produces **bitwise
identical** results to the serial per-client loop — per-client deltas,
advanced RNG streams, aggregated model parameters, history traces and
the canonical telemetry stream — across clean and faulty cohorts, and
degrades to the serial task path whenever a client or model is not
eligible for vectorization.
"""

import numpy as np
import pytest

from repro import nn
from repro.data.dataset import Dataset
from repro.fl.client import Client, LocalTrainingConfig, megabatch_eligible
from repro.fl.executor import (
    MegabatchExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    collect_updates,
)
from repro.fl.faults import FaultModel, wrap_clients
from repro.fl.server import FederatedServer
from repro.nn.megabatch import supports_megabatch, train_wave
from repro.nn.serialization import clone_module
from repro.obs import RingBufferSink, Telemetry, dumps_canonical


def build_world(
    seed=5,
    num_clients=6,
    samples_per_client=17,  # deliberately not a batch multiple
    batch_size=7,
    local_epochs=2,
    dropout=0.0,
    last_conv_l2=0.0,
    weight_decay=0.0,
):
    """A fresh, fully seeded federation — identical on every call.

    Defaults pick awkward shapes on purpose: a trailing partial batch
    every epoch, several epochs of RNG consumption per client.
    """
    total = num_clients * samples_per_client
    data_rng = np.random.default_rng(seed)
    images = data_rng.random((total, 1, 8, 8))
    labels = np.tile(np.arange(4), total // 4 + 1)[:total]
    dataset = Dataset(images, labels)
    config = LocalTrainingConfig(
        lr=0.05,
        momentum=0.9,
        batch_size=batch_size,
        local_epochs=local_epochs,
        last_conv_l2=last_conv_l2,
        weight_decay=weight_decay,
    )
    chunks = np.array_split(np.arange(total), num_clients)
    clients = [
        Client(i, dataset.subset(chunk), config, np.random.default_rng(100 + i))
        for i, chunk in enumerate(chunks)
    ]
    model_rng = np.random.default_rng(seed + 1)
    layers = [
        nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=model_rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(4 * 4 * 4, 4, rng=model_rng),
    ]
    if dropout:
        layers.insert(3, nn.Dropout(dropout, rng=np.random.default_rng(9)))
    model = nn.Sequential(*layers)
    return model, clients, dataset


def _rng_states(clients):
    return [c.rng.bit_generator.state["state"] for c in clients]


def _wave(executor, **world_kwargs):
    """One collect_updates wave; (deltas, rng states after)."""
    model, clients, _ = build_world(**world_kwargs)
    outcomes = collect_updates(
        executor, clients, model, model.flat_parameters(), round_index=0
    )
    return [value for _, value in outcomes], _rng_states(clients)


class TestEligibility:
    def test_plain_client_is_eligible(self):
        _, clients, _ = build_world()
        assert all(megabatch_eligible(c) for c in clients)

    def test_fault_wrapped_client_is_not(self):
        _, clients, _ = build_world()
        wrapped = wrap_clients(clients, FaultModel(seed=3))
        assert not any(megabatch_eligible(c) for c in wrapped)

    def test_subclass_overriding_local_update_is_not(self):
        class Custom(Client):
            def local_update(self, global_params):  # pragma: no cover
                return super().local_update(global_params)

        _, clients, _ = build_world(num_clients=1)
        base = clients[0]
        custom = Custom(
            0, base.dataset, base.config, np.random.default_rng(1)
        )
        assert not megabatch_eligible(custom)

    def test_supported_and_unsupported_models(self):
        model, _, _ = build_world()
        assert supports_megabatch(model)
        with_norm = nn.Sequential(
            nn.Conv2d(1, 4, kernel_size=3, rng=np.random.default_rng(0)),
            nn.BatchNorm2d(4),
            nn.Flatten(),
        )
        assert not supports_megabatch(with_norm)

    def test_wave_size_validation(self):
        with pytest.raises(ValueError, match="wave_size"):
            MegabatchExecutor(wave_size=0)


class TestWaveParity:
    """Bitwise identity of one training wave, megabatch vs serial."""

    @pytest.mark.parametrize(
        "world_kwargs",
        [
            {},  # partial batches + momentum, the default world
            {"dropout": 0.3},  # per-client masks drawn from cloned rng
            {"last_conv_l2": 0.01, "weight_decay": 1e-4},
            {"batch_size": 64, "local_epochs": 1},  # single full batch
        ],
        ids=["default", "dropout", "penalties", "one-batch"],
    )
    def test_deltas_and_rng_bitwise_identical(self, world_kwargs):
        serial_deltas, serial_rng = _wave(SerialExecutor(), **world_kwargs)
        mega_deltas, mega_rng = _wave(
            MegabatchExecutor(wave_size=64), **world_kwargs
        )
        assert len(mega_deltas) == len(serial_deltas)
        for a, b in zip(serial_deltas, mega_deltas):
            np.testing.assert_array_equal(a, b)
        assert mega_rng == serial_rng

    def test_wave_chunking_is_invisible(self):
        baseline, base_rng = _wave(MegabatchExecutor(wave_size=64))
        chunked, chunk_rng = _wave(MegabatchExecutor(wave_size=4))
        for a, b in zip(baseline, chunked):
            np.testing.assert_array_equal(a, b)
        assert chunk_rng == base_rng

    def test_gradient_slices_match_per_client_updates(self):
        """train_wave's batch-axis rows are the per-client deltas."""
        model, clients, _ = build_world(num_clients=4)
        global_params = model.flat_parameters()
        deltas = train_wave(model, clients, global_params)
        assert deltas.shape == (4, global_params.size)

        model2, clients2, _ = build_world(num_clients=4)
        for row, client in zip(deltas, clients2):
            np.testing.assert_array_equal(
                row, client.local_update(clone_module(model2), global_params)
            )

    def test_mixed_cohort_falls_back_per_client(self):
        """Faulty clients take the serial path inside a megabatch wave."""
        model, clients, _ = build_world()
        # zero-rate fault model: wrappers change eligibility, not math
        clients = (
            clients[:3] + wrap_clients(clients[3:], FaultModel(seed=11))
        )
        outcomes = collect_updates(
            MegabatchExecutor(wave_size=64),
            clients,
            model,
            model.flat_parameters(),
            round_index=0,
        )
        serial_deltas, serial_rng = _wave(SerialExecutor())
        for (_, value), expected in zip(outcomes, serial_deltas):
            np.testing.assert_array_equal(value, expected)
        assert _rng_states(clients) == serial_rng

    def test_non_finite_broadcast_raises_like_serial(self):
        model, clients, _ = build_world()
        broadcast = model.flat_parameters()
        broadcast[0] = np.nan
        for executor in (SerialExecutor(), MegabatchExecutor()):
            with pytest.raises(ValueError, match="non-finite"):
                collect_updates(
                    executor, clients, model, broadcast, round_index=0
                )

    def test_dtype_mismatch_falls_back_bitwise(self):
        """A float64 broadcast must not silently train in float64.

        ``load_flat_parameters`` casts the broadcast into the model's
        float32 parameters, but the serial delta is computed against the
        float64 broadcast — the vectorized path cannot reproduce that
        mixed precision, so such waves must degrade to the serial task
        path and stay bitwise identical to ``SerialExecutor``.
        """

        def run(executor):
            model, clients, _ = build_world()
            broadcast = model.flat_parameters().astype(np.float64)
            outcomes = collect_updates(
                executor, clients, model, broadcast, round_index=0
            )
            return [value for _, value in outcomes]

        serial = run(SerialExecutor())
        mega = run(MegabatchExecutor(wave_size=64))
        for a, b in zip(serial, mega):
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b)


class TestTrainingParity:
    """Multi-round server training across every engine."""

    def _train(self, executor, faults=None):
        model, clients, dataset = build_world()
        if faults is not None:
            clients = wrap_clients(clients, FaultModel(**faults))
        server = FederatedServer(model, clients, dataset, executor=executor)
        history = server.train(3)
        return model.flat_parameters(), [
            (r.round_index, r.test_acc, r.num_accepted) for r in history.rounds
        ]

    def test_clean_training_matches_all_engines(self):
        results = {}
        results["serial"] = self._train(SerialExecutor())
        results["megabatch"] = self._train(MegabatchExecutor(wave_size=4))
        with ThreadExecutor(num_workers=2) as thread:
            results["thread"] = self._train(thread)
        with ProcessExecutor(num_workers=2) as process:
            results["process"] = self._train(process)
        base_params, base_log = results["serial"]
        for name, (params, log) in results.items():
            np.testing.assert_array_equal(params, base_params, err_msg=name)
            assert log == base_log, name

    def test_faulty_training_matches_serial(self):
        faults = dict(
            dropout_prob=0.25,
            straggler_prob=0.2,
            corrupt_prob=0.15,
            stale_prob=0.1,
            seed=17,
        )
        base_params, base_log = self._train(SerialExecutor(), faults=faults)
        mega_params, mega_log = self._train(
            MegabatchExecutor(wave_size=64), faults=faults
        )
        np.testing.assert_array_equal(mega_params, base_params)
        assert mega_log == base_log


class TestTelemetryParity:
    def _traced_training(self, executor):
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        model, clients, dataset = build_world()
        faults = FaultModel(
            dropout_prob=0.2, corrupt_prob=0.15, stale_prob=0.1, seed=17
        )
        faults.telemetry = hub
        clients = wrap_clients(clients, faults)
        server = FederatedServer(
            model,
            clients,
            dataset,
            executor=executor,
            update_retries=1,
            max_client_strikes=2,
            telemetry=hub,
        )
        server.train(3)
        hub.close()
        return dumps_canonical(ring.events)

    def test_canonical_stream_byte_identical(self):
        serial = self._traced_training(SerialExecutor())
        mega = self._traced_training(MegabatchExecutor(wave_size=4))
        assert serial  # non-empty
        assert mega == serial
