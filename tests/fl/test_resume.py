"""Kill-and-resume byte-identity for the training loop.

The contract under test (ISSUE 4 acceptance): a run killed mid-round and
resumed from its newest snapshot is *byte-identical* to a run that never
crashed — same final parameters, same metric history, and the stitched
canonical telemetry stream equals the uninterrupted run's — under every
execution engine.
"""

import numpy as np
import pytest

from repro import nn
from repro.data.dataset import Dataset
from repro.fl.aggregation import fedavg
from repro.fl.client import Client, LocalTrainingConfig
from repro.fl.executor import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.fl.faults import FaultModel, wrap_clients
from repro.fl.server import FederatedServer
from repro.obs.schema import dumps_canonical
from repro.obs.sinks import RingBufferSink
from repro.obs.telemetry import Telemetry
from repro.persist import CheckpointManager, stitch_streams

NUM_ROUNDS = 5
CHECKPOINT_EVERY = 2
CRASH_AT_AGGREGATION = 4  # dies mid round 3, after the round-2 snapshot


class SimulatedCrash(Exception):
    """Stands in for SIGKILL: aborts the loop at a precise point."""


class CrashingAggregate:
    """fedavg that dies on its Nth invocation (mid-round, post-training)."""

    def __init__(self, crash_at: int) -> None:
        self.crash_at = crash_at
        self.calls = 0

    def __call__(self, stacked: np.ndarray) -> np.ndarray:
        self.calls += 1
        if self.calls == self.crash_at:
            raise SimulatedCrash(f"killed at aggregation {self.calls}")
        return fedavg(stacked)


def make_world(faulty: bool = False):
    """A small, fully seeded federation (fresh copy per call)."""
    size, classes, num_clients, total = 8, 4, 4, 120
    data_rng = np.random.default_rng(11)
    images = data_rng.random((total, 1, size, size))
    labels = np.tile(np.arange(classes), total // classes)
    dataset = Dataset(images, labels)
    config = LocalTrainingConfig(
        lr=0.05, momentum=0.9, batch_size=16, local_epochs=1
    )
    chunks = np.array_split(np.arange(total), num_clients)
    clients = [
        Client(i, dataset.subset(chunk), config, np.random.default_rng(50 + i))
        for i, chunk in enumerate(chunks)
    ]
    if faulty:
        clients = wrap_clients(
            clients,
            FaultModel(dropout_prob=0.15, corrupt_prob=0.1, seed=17),
        )
    model_rng = np.random.default_rng(5)
    model = nn.Sequential(
        nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=model_rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(4 * (size // 2) ** 2, classes, rng=model_rng),
    )
    return model, clients, dataset


EXECUTORS = [
    pytest.param(lambda: SerialExecutor(), id="serial"),
    pytest.param(lambda: ThreadExecutor(num_workers=2), id="thread"),
    pytest.param(lambda: ProcessExecutor(num_workers=2), id="process"),
]


def run_uninterrupted(executor_factory, faulty, checkpoint=None):
    """The reference: same configuration (checkpoints included), no kill."""
    model, clients, dataset = make_world(faulty)
    hub = Telemetry()
    ring = hub.add_sink(RingBufferSink())
    with executor_factory() as executor:
        server = FederatedServer(
            model, clients, dataset, executor=executor, telemetry=hub
        )
        history = server.train(
            NUM_ROUNDS,
            checkpoint=checkpoint,
            checkpoint_every=CHECKPOINT_EVERY,
        )
    hub.close()
    return model.flat_parameters(), dumps_canonical(ring.events), history


class TestKillAndResume:
    @pytest.mark.parametrize("executor_factory", EXECUTORS)
    @pytest.mark.parametrize("faulty", [False, True], ids=["clean", "faulty"])
    def test_resumed_run_is_byte_identical(
        self, tmp_path, executor_factory, faulty
    ):
        ref_params, ref_stream, ref_history = run_uninterrupted(
            executor_factory, faulty,
            checkpoint=CheckpointManager(tmp_path / "ref_ckpt"),
        )
        manager = CheckpointManager(tmp_path / "ckpt")

        # attempt 1: killed mid round 3 (snapshots exist for rounds 2)
        model, clients, dataset = make_world(faulty)
        hub1 = Telemetry()
        ring1 = hub1.add_sink(RingBufferSink())
        with executor_factory() as executor:
            server = FederatedServer(
                model,
                clients,
                dataset,
                aggregator=CrashingAggregate(CRASH_AT_AGGREGATION),
                executor=executor,
                telemetry=hub1,
            )
            with pytest.raises(SimulatedCrash):
                server.train(
                    NUM_ROUNDS,
                    checkpoint=manager,
                    checkpoint_every=CHECKPOINT_EVERY,
                )
        hub1.close()

        # the snapshot the resuming attempt will load, and the telemetry
        # cursor it will rewind to
        snapshot = manager.load_latest("train")
        assert snapshot is not None and snapshot.step < NUM_ROUNDS
        resume_seq = snapshot.meta["telemetry"]["seq"]

        # attempt 2: a freshly rebuilt world resumes and finishes
        model2, clients2, dataset2 = make_world(faulty)
        hub2 = Telemetry()
        ring2 = hub2.add_sink(RingBufferSink())
        with executor_factory() as executor:
            server2 = FederatedServer(
                model2, clients2, dataset2, executor=executor, telemetry=hub2
            )
            history = server2.train(
                NUM_ROUNDS,
                checkpoint=manager,
                checkpoint_every=CHECKPOINT_EVERY,
                resume=True,
            )
        hub2.close()

        assert model2.flat_parameters().tobytes() == ref_params.tobytes()
        assert history.to_jsonable() == ref_history.to_jsonable()
        stitched = stitch_streams(
            [ring1.events, ring2.events], [resume_seq]
        )
        assert dumps_canonical(stitched) == ref_stream

    def test_resume_without_snapshot_is_fresh_start(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        ref_params, _, _ = run_uninterrupted(lambda: SerialExecutor(), False)
        model, clients, dataset = make_world()
        server = FederatedServer(model, clients, dataset)
        server.train(NUM_ROUNDS, checkpoint=manager, resume=True)
        assert np.array_equal(model.flat_parameters(), ref_params)

    def test_resume_requires_checkpoint(self):
        model, clients, dataset = make_world()
        server = FederatedServer(model, clients, dataset)
        with pytest.raises(ValueError, match="resume"):
            server.train(2, resume=True)

    def test_checkpoint_cadence(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt", keep=10)
        model, clients, dataset = make_world()
        server = FederatedServer(model, clients, dataset)
        server.train(NUM_ROUNDS, checkpoint=manager, checkpoint_every=2)
        assert [e["step"] for e in manager.entries("train")] == [2, 4]

    def test_truncated_checkpoint_falls_back_one_cadence(self, tmp_path):
        """A torn newest snapshot costs at most checkpoint_every rounds."""
        manager = CheckpointManager(tmp_path / "ckpt", keep=10)
        ref_params, _, _ = run_uninterrupted(lambda: SerialExecutor(), False)

        model, clients, dataset = make_world()
        server = FederatedServer(model, clients, dataset)
        server.train(4, checkpoint=manager, checkpoint_every=2)
        # tear the round-4 snapshot; round-2 must carry the resume
        newest = manager.load_latest("train")
        assert newest.step == 4
        with open(newest.path, "r+b") as handle:
            data = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(data[: len(data) // 2])

        model2, clients2, dataset2 = make_world()
        server2 = FederatedServer(model2, clients2, dataset2)
        server2.train(
            NUM_ROUNDS, checkpoint=manager, checkpoint_every=2, resume=True
        )
        assert np.array_equal(model2.flat_parameters(), ref_params)
