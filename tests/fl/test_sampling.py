"""Tests for deterministic participation sampling and the lazy pool.

Contract (see ``src/repro/fl/sampling.py``): cohort draws are pure
functions of ``(seed, round_index, shard)`` — identical across call
order, process restarts and shard layouts with the same parameters —
and a :class:`ClientPool` behind a sampler materializes only the
clients a round actually touches, so simulated populations of 10^4–10^6
registered devices cost memory proportional to participation.
"""

import numpy as np
import pytest

from repro import nn
from repro.data.dataset import Dataset
from repro.fl.client import Client, LocalTrainingConfig
from repro.fl.sampling import ClientPool, ParticipationSampler
from repro.fl.server import FederatedServer
from repro.obs import RingBufferSink, Telemetry


class TestSamplerValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="population"):
            ParticipationSampler(population=0, cohort=1)
        with pytest.raises(ValueError, match="cohort"):
            ParticipationSampler(population=10, cohort=0)
        with pytest.raises(ValueError, match="cohort"):
            ParticipationSampler(population=10, cohort=11)
        with pytest.raises(ValueError, match="num_shards"):
            ParticipationSampler(population=10, cohort=2, num_shards=0)
        with pytest.raises(ValueError, match="num_shards"):
            ParticipationSampler(population=10, cohort=2, num_shards=11)

    def test_rejects_negative_round(self):
        sampler = ParticipationSampler(population=10, cohort=2)
        with pytest.raises(ValueError, match="round_index"):
            sampler.draw(-1)


class TestSamplerDraws:
    def test_draws_are_pure_functions_of_seed_and_round(self):
        a = ParticipationSampler(100, 10, seed=7, num_shards=4)
        b = ParticipationSampler(100, 10, seed=7, num_shards=4)
        # out of order, repeated: same answers
        rounds = [3, 0, 3, 12, 0]
        for r in rounds:
            np.testing.assert_array_equal(a.draw(r), b.draw(r))
        np.testing.assert_array_equal(a.draw(3), a.draw(3))

    def test_draws_are_sorted_unique_in_range(self):
        sampler = ParticipationSampler(1000, 64, seed=1, num_shards=8)
        for r in range(5):
            drawn = sampler.draw(r)
            assert drawn.dtype == np.int64
            assert drawn.size == 64
            assert np.all(np.diff(drawn) > 0)  # sorted, distinct
            assert drawn[0] >= 0 and drawn[-1] < 1000

    def test_different_rounds_and_seeds_differ(self):
        sampler = ParticipationSampler(10_000, 64, seed=1)
        assert not np.array_equal(sampler.draw(0), sampler.draw(1))
        other = ParticipationSampler(10_000, 64, seed=2)
        assert not np.array_equal(sampler.draw(0), other.draw(0))

    def test_shard_quotas_partition_the_cohort(self):
        sampler = ParticipationSampler(103, 17, seed=3, num_shards=5)
        drawn = sampler.draw(4)
        counts = [
            int(((drawn >= start) & (drawn < stop)).sum())
            for start, stop in sampler._ranges
        ]
        assert counts == sampler._quotas
        assert sum(counts) == 17
        for (start, stop), quota in zip(sampler._ranges, sampler._quotas):
            assert quota <= stop - start

    def test_shard_draws_are_independent_of_other_shards(self):
        """A shard's picks depend on (seed, round, shard) — nothing else."""
        a = ParticipationSampler(100, 50, seed=9, num_shards=2)
        # same first-shard geometry and quota, different second shard
        drawn_a = a.draw(2)
        b = ParticipationSampler(100, 50, seed=9, num_shards=2)
        drawn_b = b.draw(2)
        first_a = drawn_a[drawn_a < 50]
        first_b = drawn_b[drawn_b < 50]
        np.testing.assert_array_equal(first_a, first_b)

    def test_full_participation_and_degenerate_layouts(self):
        full = ParticipationSampler(8, 8, num_shards=3)
        np.testing.assert_array_equal(full.draw(0), np.arange(8))
        solo = ParticipationSampler(1, 1)
        np.testing.assert_array_equal(solo.draw(5), [0])
        shard_per_client = ParticipationSampler(6, 4, num_shards=6)
        drawn = shard_per_client.draw(0)
        assert drawn.size == 4

    def test_dense_draw_uses_every_id_eventually(self):
        sampler = ParticipationSampler(10, 8, seed=0)
        seen = set()
        for r in range(20):
            seen.update(int(i) for i in sampler.draw(r))
        assert seen == set(range(10))

    def test_million_client_population_draws_cheaply(self):
        """O(cohort) draws: a 10^6 population must not materialize 10^6."""
        sampler = ParticipationSampler(1_000_000, 64, seed=5, num_shards=4)
        drawn = sampler.draw(0)
        assert drawn.size == 64
        assert np.unique(drawn).size == 64
        assert drawn[-1] < 1_000_000


def _counting_factory(record):
    def factory(index):
        record.append(index)
        return _FakeClient(index)

    return factory


class _FakeClient:
    def __init__(self, client_id):
        self.client_id = client_id


class TestClientPool:
    def test_lazy_materialization_and_identity(self):
        built = []
        pool = ClientPool(1000, _counting_factory(built))
        assert len(pool) == 1000
        assert built == []
        first = pool[7]
        again = pool[7]
        assert first is again  # cached: state persists across rounds
        assert built == [7]
        assert pool.cached() == [first]

    def test_negative_index_and_bounds(self):
        pool = ClientPool(10, _FakeClient)
        assert pool[-1].client_id == 9
        with pytest.raises(IndexError):
            pool[10]
        with pytest.raises(IndexError):
            pool[-11]
        with pytest.raises(TypeError, match="slicing"):
            pool[1:3]

    def test_factory_identity_contract(self):
        pool = ClientPool(10, lambda index: _FakeClient(index + 1))
        with pytest.raises(ValueError, match="client_id"):
            pool[0]

    def test_bounded_cache_evicts_least_recently_used(self):
        built = []
        pool = ClientPool(10, _counting_factory(built), cache_size=2)
        a = pool[0]
        pool[1]
        pool[0]  # touch 0: now 1 is the LRU entry
        pool[2]  # evicts 1
        assert built == [0, 1, 2]
        assert pool[0] is a  # still cached
        pool[1]  # rebuilt fresh
        assert built == [0, 1, 2, 1]

    def test_validation(self):
        with pytest.raises(ValueError, match="population"):
            ClientPool(0, _FakeClient)
        with pytest.raises(ValueError, match="cache_size"):
            ClientPool(10, _FakeClient, cache_size=0)


def _build_pooled_world(population=50, seed=3):
    """A tiny server world behind a lazy pool, for integration tests."""
    config = LocalTrainingConfig(lr=0.05, momentum=0.9, batch_size=8)

    def factory(index):
        rng = np.random.default_rng([seed, index])
        images = rng.random((8, 1, 8, 8))
        labels = np.tile(np.arange(4), 2)
        return Client(
            index,
            Dataset(images, labels),
            config,
            np.random.default_rng([seed + 1, index]),
        )

    pool = ClientPool(population, factory)
    eval_rng = np.random.default_rng(seed + 2)
    test_set = Dataset(
        eval_rng.random((16, 1, 8, 8)), np.tile(np.arange(4), 4)
    )
    model_rng = np.random.default_rng(seed + 3)
    model = nn.Sequential(
        nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=model_rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(4 * 4 * 4, 4, rng=model_rng),
    )
    return model, pool, test_set


class TestServerIntegration:
    def test_round_cost_scales_with_cohort_not_population(self):
        model, pool, test_set = _build_pooled_world(population=50)
        sampler = ParticipationSampler(50, 6, seed=11)
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        server = FederatedServer(
            model, pool, test_set, sampler=sampler, telemetry=hub
        )
        server.train(2)
        hub.close()
        # only sampled clients ever came into existence
        materialized = {c.client_id for c in pool.cached()}
        expected = {int(i) for i in sampler.draw(0)} | {
            int(i) for i in sampler.draw(1)
        }
        assert materialized == expected
        assert len(materialized) <= 12 < len(pool)
        sampled_events = [
            e for e in ring.events if e["name"] == "fl.cohort_sampled"
        ]
        assert len(sampled_events) == 2
        assert sampled_events[0]["attrs"]["population"] == 50
        assert sampled_events[0]["attrs"]["cohort"] == 6

    def test_sampled_training_is_reproducible(self):
        def run():
            model, pool, test_set = _build_pooled_world()
            sampler = ParticipationSampler(50, 6, seed=11)
            server = FederatedServer(model, pool, test_set, sampler=sampler)
            server.train(2)
            return model.flat_parameters()

        np.testing.assert_array_equal(run(), run())

    def test_pool_without_sampler_is_rejected(self):
        model, pool, test_set = _build_pooled_world()
        with pytest.raises(ValueError, match="ParticipationSampler"):
            FederatedServer(model, pool, test_set)

    def test_population_mismatch_is_rejected(self):
        model, pool, test_set = _build_pooled_world(population=50)
        sampler = ParticipationSampler(49, 6)
        with pytest.raises(ValueError, match="population"):
            FederatedServer(model, pool, test_set, sampler=sampler)

    def test_sampler_excludes_clients_per_round(self):
        model, pool, test_set = _build_pooled_world()
        sampler = ParticipationSampler(50, 6)
        with pytest.raises(ValueError, match="mutually exclusive"):
            FederatedServer(
                model,
                pool,
                test_set,
                sampler=sampler,
                clients_per_round=3,
            )

    def test_checkpointing_a_pool_is_refused(self, tmp_path):
        from repro.persist import CheckpointManager

        model, pool, test_set = _build_pooled_world()
        sampler = ParticipationSampler(50, 6, seed=11)
        server = FederatedServer(model, pool, test_set, sampler=sampler)
        history = server.train(1)
        manager = CheckpointManager(tmp_path)
        with pytest.raises(ValueError, match="ClientPool"):
            server.save_checkpoint(manager, 1, history)
