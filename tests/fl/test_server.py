"""Tests for the federated server round loop."""

import numpy as np
import pytest

from repro.attacks.poison import BackdoorTask
from repro.attacks.triggers import pixel_pattern
from repro.fl.client import Client, LocalTrainingConfig
from repro.fl.server import FederatedServer


def make_clients(dataset, num_clients, rng, local_epochs=1):
    config = LocalTrainingConfig(
        lr=0.05, momentum=0.5, batch_size=16, local_epochs=local_epochs
    )
    chunks = np.array_split(rng.permutation(len(dataset)), num_clients)
    return [
        Client(i, dataset.subset(chunk), config, np.random.default_rng(70 + i))
        for i, chunk in enumerate(chunks)
    ]


class TestFederatedServer:
    def test_training_improves_accuracy(self, tiny_cnn, tiny_dataset, rng):
        clients = make_clients(tiny_dataset, 3, rng)
        server = FederatedServer(tiny_cnn, clients, tiny_dataset)
        history = server.train(6)
        assert history.rounds[-1].test_acc > history.rounds[0].test_acc - 0.05
        assert len(history) == 6

    def test_backdoor_metric_logged(self, tiny_cnn, tiny_dataset, rng):
        task = BackdoorTask(pixel_pattern(3, 8), victim_label=4, attack_label=0)
        clients = make_clients(tiny_dataset, 2, rng)
        server = FederatedServer(tiny_cnn, clients, tiny_dataset, backdoor_task=task)
        history = server.train(1)
        assert history.rounds[0].attack_acc is not None

    def test_no_backdoor_metric_when_no_task(self, tiny_cnn, tiny_dataset, rng):
        clients = make_clients(tiny_dataset, 2, rng)
        server = FederatedServer(tiny_cnn, clients, tiny_dataset)
        history = server.train(1)
        assert history.rounds[0].attack_acc is None
        assert history.attack_accuracies == []

    def test_client_sampling(self, tiny_cnn, tiny_dataset, rng):
        clients = make_clients(tiny_dataset, 4, rng)
        server = FederatedServer(
            tiny_cnn,
            clients,
            tiny_dataset,
            clients_per_round=2,
            rng=np.random.default_rng(0),
        )
        selected = server.select_clients()
        assert len(selected) == 2
        assert len({c.client_id for c in selected}) == 2

    def test_sampling_requires_rng(self, tiny_cnn, tiny_dataset, rng):
        clients = make_clients(tiny_dataset, 3, rng)
        with pytest.raises(ValueError, match="requires an rng"):
            FederatedServer(tiny_cnn, clients, tiny_dataset, clients_per_round=2)

    def test_sampling_bounds(self, tiny_cnn, tiny_dataset, rng):
        clients = make_clients(tiny_dataset, 3, rng)
        with pytest.raises(ValueError, match="clients_per_round"):
            FederatedServer(
                tiny_cnn,
                clients,
                tiny_dataset,
                clients_per_round=9,
                rng=np.random.default_rng(0),
            )

    def test_needs_clients_and_rounds(self, tiny_cnn, tiny_dataset, rng):
        with pytest.raises(ValueError, match="at least one client"):
            FederatedServer(tiny_cnn, [], tiny_dataset)
        clients = make_clients(tiny_dataset, 2, rng)
        server = FederatedServer(tiny_cnn, clients, tiny_dataset)
        with pytest.raises(ValueError, match="num_rounds"):
            server.train(0)

    def test_custom_aggregation_rule(self, tiny_cnn, tiny_dataset, rng):
        from repro.fl.aggregation import coordinate_median

        clients = make_clients(tiny_dataset, 3, rng)
        server = FederatedServer(
            tiny_cnn, clients, tiny_dataset, aggregate=coordinate_median
        )
        history = server.train(1)
        assert len(history) == 1

    def test_history_final_empty_raises(self):
        from repro.fl.server import TrainingHistory

        with pytest.raises(ValueError):
            TrainingHistory().final
