"""Tests for the federated server round loop."""

import numpy as np
import pytest

from repro.attacks.poison import BackdoorTask
from repro.attacks.triggers import pixel_pattern
from repro.fl.client import Client, LocalTrainingConfig
from repro.fl.server import FederatedServer


def make_clients(dataset, num_clients, rng, local_epochs=1):
    config = LocalTrainingConfig(
        lr=0.05, momentum=0.5, batch_size=16, local_epochs=local_epochs
    )
    chunks = np.array_split(rng.permutation(len(dataset)), num_clients)
    return [
        Client(i, dataset.subset(chunk), config, np.random.default_rng(70 + i))
        for i, chunk in enumerate(chunks)
    ]


class TestFederatedServer:
    def test_training_improves_accuracy(self, tiny_cnn, tiny_dataset, rng):
        clients = make_clients(tiny_dataset, 3, rng)
        server = FederatedServer(tiny_cnn, clients, tiny_dataset)
        history = server.train(6)
        assert history.rounds[-1].test_acc > history.rounds[0].test_acc - 0.05
        assert len(history) == 6

    def test_backdoor_metric_logged(self, tiny_cnn, tiny_dataset, rng):
        task = BackdoorTask(pixel_pattern(3, 8), victim_label=4, attack_label=0)
        clients = make_clients(tiny_dataset, 2, rng)
        server = FederatedServer(tiny_cnn, clients, tiny_dataset, backdoor_task=task)
        history = server.train(1)
        assert history.rounds[0].attack_acc is not None

    def test_no_backdoor_metric_when_no_task(self, tiny_cnn, tiny_dataset, rng):
        clients = make_clients(tiny_dataset, 2, rng)
        server = FederatedServer(tiny_cnn, clients, tiny_dataset)
        history = server.train(1)
        assert history.rounds[0].attack_acc is None
        assert history.attack_accuracies == []

    def test_client_sampling(self, tiny_cnn, tiny_dataset, rng):
        clients = make_clients(tiny_dataset, 4, rng)
        server = FederatedServer(
            tiny_cnn,
            clients,
            tiny_dataset,
            clients_per_round=2,
            rng=np.random.default_rng(0),
        )
        selected = server.select_clients()
        assert len(selected) == 2
        assert len({c.client_id for c in selected}) == 2

    def test_sampling_without_rng_defaults_deterministically(
        self, tiny_cnn, tiny_dataset, rng
    ):
        """No rng + clients_per_round seeds default_rng(0), not an error."""
        clients = make_clients(tiny_dataset, 3, rng)
        picks = []
        for _ in range(2):
            server = FederatedServer(
                tiny_cnn, clients, tiny_dataset, clients_per_round=2
            )
            picks.append([c.client_id for c in server.select_clients()])
        assert picks[0] == picks[1]

    def test_sampling_bounds(self, tiny_cnn, tiny_dataset, rng):
        clients = make_clients(tiny_dataset, 3, rng)
        with pytest.raises(ValueError, match="clients_per_round"):
            FederatedServer(
                tiny_cnn,
                clients,
                tiny_dataset,
                clients_per_round=9,
                rng=np.random.default_rng(0),
            )

    def test_needs_clients_and_rounds(self, tiny_cnn, tiny_dataset, rng):
        with pytest.raises(ValueError, match="at least one client"):
            FederatedServer(tiny_cnn, [], tiny_dataset)
        clients = make_clients(tiny_dataset, 2, rng)
        server = FederatedServer(tiny_cnn, clients, tiny_dataset)
        with pytest.raises(ValueError, match="num_rounds"):
            server.train(0)

    def test_custom_aggregation_rule(self, tiny_cnn, tiny_dataset, rng):
        from repro.fl.aggregation import coordinate_median

        clients = make_clients(tiny_dataset, 3, rng)
        server = FederatedServer(
            tiny_cnn, clients, tiny_dataset, aggregator=coordinate_median
        )
        history = server.train(1)
        assert len(history) == 1

    def test_history_final_empty_raises(self):
        from repro.fl.server import TrainingHistory

        with pytest.raises(ValueError):
            TrainingHistory().final


class StubClient:
    """Scripted client for exercising the server's failure handling."""

    def __init__(self, client_id, behaviour="zeros"):
        self.client_id = client_id
        self.behaviour = behaviour
        self.calls = 0

    def local_update(self, model, global_params, round_index=None):
        from repro.fl.faults import ClientDropout

        self.calls += 1
        if self.behaviour == "drop":
            raise ClientDropout("gone")
        if self.behaviour == "flaky" and self.calls == 1:
            raise ClientDropout("first attempt lost")
        if self.behaviour == "nan":
            bad = np.zeros_like(global_params)
            bad[0] = np.nan
            return bad
        if self.behaviour == "shape":
            return np.zeros(3, dtype=global_params.dtype)
        return np.zeros_like(global_params)


class TestServerDegradation:
    def test_dropout_tolerated(self, tiny_cnn, tiny_dataset):
        server = FederatedServer(
            tiny_cnn,
            [StubClient(0), StubClient(1, "drop")],
            tiny_dataset,
        )
        metrics = server.run_round(0)
        assert not metrics.skipped
        assert metrics.num_accepted == 1
        assert metrics.dropped == [(1, "gone")]
        assert np.isfinite(tiny_cnn.flat_parameters()).all()

    @pytest.mark.parametrize("behaviour", ["nan", "shape"])
    def test_invalid_payload_rejected(self, behaviour, tiny_cnn, tiny_dataset):
        server = FederatedServer(
            tiny_cnn,
            [StubClient(0), StubClient(1, behaviour)],
            tiny_dataset,
        )
        metrics = server.run_round(0)
        assert metrics.num_accepted == 1
        assert [cid for cid, _ in metrics.rejected] == [1]
        assert np.isfinite(tiny_cnn.flat_parameters()).all()

    def test_below_quorum_round_skipped(self, tiny_cnn, tiny_dataset):
        before = tiny_cnn.flat_parameters().copy()
        server = FederatedServer(
            tiny_cnn,
            [StubClient(0, "drop"), StubClient(1, "drop")],
            tiny_dataset,
        )
        history = server.train(2)
        assert history.skipped_rounds == [0, 1]
        assert history.num_dropouts == 4
        np.testing.assert_array_equal(tiny_cnn.flat_parameters(), before)

    def test_fractional_quorum(self, tiny_cnn, tiny_dataset):
        # 3 of 4 respond; 0.9 quorum needs all 4 -> skip, 0.5 needs 2 -> run
        clients = [StubClient(i) for i in range(3)] + [StubClient(3, "drop")]
        for quorum, skipped in ((0.9, True), (0.5, False)):
            server = FederatedServer(
                tiny_cnn, clients, tiny_dataset, min_quorum=quorum
            )
            assert server.run_round(0).skipped is skipped

    def test_retry_recovers_flaky_client(self, tiny_cnn, tiny_dataset):
        flaky = StubClient(1, "flaky")
        server = FederatedServer(
            tiny_cnn, [StubClient(0), flaky], tiny_dataset, update_retries=1
        )
        metrics = server.run_round(0)
        assert metrics.num_accepted == 2
        assert flaky.calls == 2

    def test_repeat_offender_quarantined(self, tiny_cnn, tiny_dataset):
        bad = StubClient(1, "nan")
        server = FederatedServer(
            tiny_cnn,
            [StubClient(0), bad],
            tiny_dataset,
            max_client_strikes=2,
        )
        history = server.train(3)
        assert history.quarantine_events == [(1, 1)]
        assert server.quarantined == {1}
        # after quarantine the offender is no longer selected
        assert bad.calls == 2
        assert history.rounds[2].num_selected == 1

    def test_participation_accounting(self, tiny_cnn, tiny_dataset):
        server = FederatedServer(
            tiny_cnn,
            [StubClient(0), StubClient(1, "drop"), StubClient(2, "nan")],
            tiny_dataset,
        )
        metrics = server.run_round(0)
        total = metrics.num_accepted + len(metrics.dropped) + len(metrics.rejected)
        assert total == metrics.num_selected == 3

    def test_invalid_robustness_params(self, tiny_cnn, tiny_dataset):
        clients = [StubClient(0)]
        with pytest.raises(ValueError, match="min_quorum"):
            FederatedServer(tiny_cnn, clients, tiny_dataset, min_quorum=0)
        with pytest.raises(ValueError, match="min_quorum"):
            FederatedServer(tiny_cnn, clients, tiny_dataset, min_quorum=1.5)
        with pytest.raises(ValueError, match="update_retries"):
            FederatedServer(tiny_cnn, clients, tiny_dataset, update_retries=-1)
        with pytest.raises(ValueError, match="max_client_strikes"):
            FederatedServer(tiny_cnn, clients, tiny_dataset, max_client_strikes=0)
