"""Tests for the always-on defense service (deadline-scheduled rounds).

Covers the streaming lifecycle on the simulated clock — quorum-or-
deadline commits, late-report policy, bounded-queue backpressure,
exponential backoff, degraded mode — plus the online-trust integration
(quarantine/probation/restore and its interplay with the report-strike
path) and checkpoint/resume state identity.  The chaos acceptance
scenario (stragglers + bursts + a flash-crowd spike + boosted malicious
clients, byte-identical across executor engines) lives at the bottom.
"""

import numpy as np
import pytest

from repro import nn
from repro.data.dataset import Dataset
from repro.fl.client import Client, LocalTrainingConfig
from repro.fl.executor import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.fl.faults import ClientDropout, FaultModel, wrap_clients
from repro.fl.service import (
    DefenseService,
    ReportEnvelope,
    RoundOutcome,
    ServiceConfig,
    ServiceHistory,
)
from repro.fl.traffic import BurstyTraffic, ComposedTraffic, FlashCrowdTraffic, TrafficPattern
from repro.fl.trust import TrustConfig
from repro.obs.context import RunContext
from repro.obs.schema import dumps_canonical
from repro.obs.sinks import RingBufferSink
from repro.obs.telemetry import Telemetry
from repro.persist import CheckpointManager

DIM = 4
ONES = np.ones(DIM, dtype=np.float64)


# -- stubs --------------------------------------------------------------


class VectorModel:
    """Minimal flat-parameter model satisfying the service's contract."""

    def __init__(self, dim: int = DIM):
        self._params = np.zeros(dim, dtype=np.float64)

    def flat_parameters(self):
        return self._params.copy()

    def load_flat_parameters(self, flat):
        self._params = np.asarray(flat, dtype=np.float64).copy()

    def modules(self):
        return iter(())

    def state_dict(self):
        return {"w": self._params.copy()}

    def load_state_dict(self, state):
        self._params = np.asarray(state["w"], dtype=np.float64).copy()


class ScriptClient:
    """Stub client returning a scripted delta (no rng, no fault plans)."""

    def __init__(self, client_id, delta_fn=None):
        self.client_id = client_id
        self.delta_fn = delta_fn or (lambda r: ONES.copy())

    def local_update(self, model, global_params, round_index=None):
        return self.delta_fn(round_index)


class DropClient:
    """Stub client that never responds."""

    def __init__(self, client_id):
        self.client_id = client_id

    def local_update(self, model, global_params, round_index=None):
        raise ClientDropout("offline")


class FixedTraffic(TrafficPattern):
    """Scripted delays: {round: {client_id: delay}}; missing means 0."""

    def __init__(self, table):
        self.table = table

    def delays(self, round_index, client_ids):
        row = self.table.get(int(round_index), {})
        return {int(c): float(row.get(int(c), 0.0)) for c in client_ids}


def nan_delta(_round):
    bad = ONES.copy()
    bad[0] = np.nan
    return bad


def make_service(clients, config, traffic=None, model=None, checkpoint=None):
    hub = Telemetry()
    ring = hub.add_sink(RingBufferSink())
    service = DefenseService(
        model if model is not None else VectorModel(),
        clients,
        test_set=None,
        config=config,
        traffic=traffic,
        context=RunContext(telemetry=hub, checkpoint=checkpoint),
    )
    return service, ring


def stub_config(**overrides):
    """A quiet baseline for stub tests: no eval, no cleanse, no trust."""
    defaults = dict(
        round_deadline=10.0,
        eval_every=0,
        cleanse_threshold=None,
        trust_enabled=False,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


# -- config / bookkeeping ----------------------------------------------


class TestServiceConfig:
    def test_round_interval_defaults_to_deadline(self):
        cfg = ServiceConfig(round_deadline=7.0)
        assert cfg.round_interval == 7.0
        assert ServiceConfig(round_deadline=7.0, round_interval=3.0).round_interval == 3.0

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(round_deadline=0.0), "round_deadline"),
            (dict(round_interval=-1.0), "round_interval"),
            (dict(quorum=0.0), "quorum"),
            (dict(quorum=1.5), "quorum"),
            (dict(quorum=0), "quorum"),
            (dict(degraded_after=0), "degraded_after"),
            (dict(late_policy="queue"), "late_policy"),
            (dict(backpressure="panic"), "backpressure"),
            (dict(max_pending=0), "max_pending"),
            (dict(backoff_base=0), "backoff"),
            (dict(backoff_base=4, backoff_max=2), "backoff"),
            (dict(max_client_strikes=0), "max_client_strikes"),
            (dict(eval_every=-1), "eval_every"),
            (dict(checkpoint_every=0), "checkpoint_every"),
            (dict(probation_interval=0), "probation_interval"),
            (dict(cleanse_cooldown=-1), "cleanse_cooldown"),
            (dict(min_cleanse_clients=0), "min_cleanse_clients"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ServiceConfig(**kwargs)


class TestHistory:
    def test_percentile_nearest_rank(self):
        # the shared quantile helper (repro.obs.metrics) now backs
        # latency_percentiles; same nearest-rank semantics as the old
        # service-local _percentile
        from repro.obs.metrics import nearest_rank

        assert nearest_rank([], 50) == 0.0
        assert nearest_rank([1.0, 2.0, 3.0, 4.0], 50) == 2.0
        assert nearest_rank([1.0, 2.0, 3.0, 4.0], 99) == 4.0
        assert nearest_rank(list(range(1, 101)), 99) == 99

    def test_outcome_json_roundtrip(self):
        outcome = RoundOutcome(
            3, 30.0, 34.5, 4, True,
            num_solicited=6, num_probation=1, accepted=[0, 1, 2, 4],
            invalid=[(5, "nan values")], no_response=[(6, "offline")],
            late=[3], deferred=[3], shed=[], rejected=[],
            trust_quarantined=[5], cohort_trust=0.8, cleansed=True,
            test_acc=0.75,
        )
        restored = RoundOutcome.from_jsonable(outcome.to_jsonable())
        assert restored.to_jsonable() == outcome.to_jsonable()
        assert restored.commit_latency == pytest.approx(4.5)

    def test_history_aggregates(self):
        history = ServiceHistory()
        history.append(RoundOutcome(0, 0.0, 2.0, 2, True, accepted=[0, 1]))
        history.append(RoundOutcome(1, 10.0, 20.0, 2, False, late=[0], shed=[1]))
        history.append(
            RoundOutcome(2, 20.0, 24.0, 2, True, accepted=[0, 1], degraded=True,
                         cleansed=True)
        )
        assert history.committed_rounds == [0, 2]
        assert history.quorum_failed_rounds == [1]
        assert history.degraded_rounds == [2]
        assert history.cleansed_rounds == [2]
        assert history.commit_latencies == [2.0, 10.0, 4.0]
        assert history.latency_percentiles()["p50"] == 4.0
        counts = history.report_counts()
        assert counts["admitted"] == 4
        assert counts["late"] == 1
        assert counts["shed"] == 1
        restored = ServiceHistory.from_jsonable(history.to_jsonable())
        assert restored.to_jsonable() == history.to_jsonable()
        assert restored.final.round_index == 2

    def test_empty_history_final_raises(self):
        with pytest.raises(ValueError):
            ServiceHistory().final

    def test_needs_clients_and_rounds(self):
        with pytest.raises(ValueError, match="at least one client"):
            DefenseService(VectorModel(), [], None)
        service, _ = make_service([ScriptClient(0)], stub_config())
        with pytest.raises(ValueError, match="num_rounds"):
            service.run(0)


# -- round lifecycle on the simulated clock ----------------------------


class TestRoundLifecycle:
    def test_commits_at_quorum_arrival(self):
        clients = [ScriptClient(i) for i in range(4)]
        traffic = FixedTraffic({0: {0: 1.0, 1: 3.0, 2: 5.0, 3: 20.0}})
        service, _ = make_service(clients, stub_config(quorum=2), traffic)
        outcome = service.run_round(0)
        assert outcome.quorum_met
        assert outcome.accepted == [0, 1]
        assert outcome.commit_time == 3.0  # the 2nd valid arrival
        assert outcome.commit_latency == 3.0
        # post-commit and past-deadline reports both go down the late path
        assert outcome.late == [2, 3]
        assert outcome.deferred == [2, 3]
        np.testing.assert_allclose(service.model.flat_parameters(), ONES)

    def test_quorum_failure_commits_at_deadline(self):
        clients = [ScriptClient(i) for i in range(4)]
        traffic = FixedTraffic({0: {1: 12.0, 2: 13.0, 3: 14.0}})
        service, _ = make_service(clients, stub_config(quorum=3), traffic)
        outcome = service.run_round(0)
        assert not outcome.quorum_met
        assert outcome.accepted == [0]
        assert outcome.commit_time == 10.0  # the deadline, not a block
        np.testing.assert_array_equal(
            service.model.flat_parameters(), np.zeros(DIM)
        )

    def test_deferred_report_commits_next_round(self):
        clients = [ScriptClient(0), ScriptClient(1, lambda r: 2.0 * ONES)]
        traffic = FixedTraffic({0: {1: 15.0}, 1: {0: 8.0}})
        service, _ = make_service(clients, stub_config(quorum=1), traffic)
        first = service.run_round(0)
        assert first.accepted == [0]
        assert first.deferred == [1]
        second = service.run_round(1)
        # client 1 is backed off, so only client 0 was solicited — but the
        # deferred report (arrival 15.0) beats the fresh one (18.0)
        assert second.num_solicited == 1
        assert second.accepted == [1]
        assert second.commit_time == 15.0
        np.testing.assert_allclose(
            service.model.flat_parameters(), ONES + 2.0 * ONES
        )

    def test_drop_policy_discards_late_reports(self):
        clients = [ScriptClient(0), ScriptClient(1)]
        traffic = FixedTraffic({0: {1: 15.0}})
        service, _ = make_service(
            clients, stub_config(quorum=1, late_policy="drop"), traffic
        )
        outcome = service.run_round(0)
        assert outcome.late == [1]
        assert outcome.deferred == []
        assert service.pending == []

    def test_duplicate_reports_keep_earliest(self):
        clients = [ScriptClient(0)]
        traffic = FixedTraffic({0: {0: 5.0}})
        service, _ = make_service(clients, stub_config(quorum=1), traffic)
        service.pending = [
            ReportEnvelope(0, 0, 0.2, 2.0 * ONES),
            ReportEnvelope(0, 0, 0.5, 3.0 * ONES),
        ]
        outcome = service.run_round(0)
        assert outcome.accepted == [0]
        assert outcome.commit_time == 0.2
        assert outcome.late == []  # duplicates vanish, they are not "late"
        np.testing.assert_allclose(service.model.flat_parameters(), 2.0 * ONES)

    def test_backoff_escalates_and_resolicits(self):
        clients = [ScriptClient(0), ScriptClient(1)]
        traffic = FixedTraffic({0: {1: 15.0}, 2: {1: 15.0}})
        service, ring = make_service(
            clients, stub_config(quorum=1, backoff_base=1, backoff_max=8), traffic
        )
        solicited = [service.run_round(r).num_solicited for r in range(6)]
        # miss in round 0 -> sit out 1 round; miss again in round 2 ->
        # sit out 2 rounds (exponential), re-solicited in round 5
        assert solicited == [2, 1, 2, 1, 1, 2]
        backoffs = [
            e["attrs"]["backoff_rounds"]
            for e in ring.events
            if e.get("name") == "service.backoff"
        ]
        # round 5's report ties client 0's arrival, loses the id
        # tiebreak and lands post-commit: a third (escalated) miss
        assert backoffs == [1, 2, 4]

    def test_invalid_reports_strike_then_quarantine(self):
        # the bad client gets the low id so its report is admitted (and
        # validated) before the honest report commits the round
        clients = [ScriptClient(0, nan_delta), ScriptClient(1)]
        service, ring = make_service(
            clients, stub_config(quorum=1, max_client_strikes=2)
        )
        first = service.run_round(0)
        assert [cid for cid, _ in first.invalid] == [0]
        assert first.strike_quarantined == []
        second = service.run_round(1)
        assert second.strike_quarantined == [0]
        assert service.strike_quarantined == {0}
        third = service.run_round(2)
        assert third.num_solicited == 1
        assert any(e.get("name") == "fl.quarantine" for e in ring.events)


class TestBackpressure:
    def make(self, backpressure):
        clients = [ScriptClient(i) for i in range(3)]
        traffic = FixedTraffic({0: {1: 15.0, 2: 16.0}})
        return make_service(
            clients,
            stub_config(quorum=1, max_pending=1, backpressure=backpressure),
            traffic,
        )

    def test_shed_oldest_evicts_stalest(self):
        service, _ = self.make("shed_oldest")
        outcome = service.run_round(0)
        assert outcome.deferred == [1, 2]
        assert outcome.shed == [1]
        assert [env.client_id for env in service.pending] == [2]

    def test_reject_new_refuses_incoming(self):
        service, _ = self.make("reject_new")
        outcome = service.run_round(0)
        assert outcome.deferred == [1]
        assert outcome.rejected == [2]
        assert [env.client_id for env in service.pending] == [1]


class TestDegradedMode:
    def test_enters_after_consecutive_failures_and_recovers(self):
        clients = [ScriptClient(0), ScriptClient(1)]
        # both clients late in round 3; backoff empties round 4
        traffic = FixedTraffic({3: {0: 15.0, 1: 15.0}})
        service, ring = make_service(
            clients,
            stub_config(
                quorum=2,
                degraded_after=2,
                late_policy="drop",
            ),
            traffic,
        )
        history = service.run(6)
        assert history.committed_rounds == [0, 1, 2, 5]
        assert history.quorum_failed_rounds == [3, 4]
        assert history.degraded_rounds == [4]
        assert [r.entered_degraded for r in history.rounds] == [
            False, False, False, False, True, False,
        ]
        assert [r.exited_degraded for r in history.rounds] == [
            False, False, False, False, False, True,
        ]
        assert any(e.get("name") == "service.degraded" for e in ring.events)
        assert any(e.get("name") == "service.recovered" for e in ring.events)

    def test_degraded_serves_last_good_snapshot(self, tmp_path):
        clients = [ScriptClient(0), ScriptClient(1)]
        traffic = FixedTraffic({3: {0: 15.0, 1: 15.0}})
        manager = CheckpointManager(tmp_path / "ckpt")
        service, _ = make_service(
            clients,
            stub_config(
                quorum=2,
                degraded_after=2,
                late_policy="drop",
                checkpoint_every=2,  # snapshot lags the live model
            ),
            traffic,
            checkpoint=manager,
        )
        history = service.run(6)
        # rounds 0-2 commit (+1 each); the snapshot holds round 1's params
        # (2*ones); entering degraded mode at round 4 rolls round 2's
        # commit back, so round 5's commit lands on top of the snapshot
        assert history.committed_rounds == [0, 1, 2, 5]
        assert history.degraded_rounds == [4]
        np.testing.assert_allclose(
            service.model.flat_parameters(), 3.0 * ONES
        )


# -- online trust: quarantine, probation, restore ----------------------


def trust_config():
    return TrustConfig(
        smoothing=0.5,
        quarantine_threshold=0.4,
        recover_threshold=0.6,
        min_observations=3,
    )


def turncoat(round_index):
    """Boosted anti-cohort deltas for 3 rounds, honest afterwards."""
    if round_index < 3:
        return -8.0 * ONES
    return ONES.copy()


class TestTrustIntegration:
    def make(self, malicious_fn=turncoat, num_honest=4, **overrides):
        # the malicious client gets id 0 so its report sorts first on
        # arrival ties and probation reports beat the commit cutoff
        clients = [ScriptClient(0, malicious_fn)] + [
            ScriptClient(i) for i in range(1, num_honest + 1)
        ]
        config = stub_config(
            quorum=1.0,
            trust_enabled=True,
            trust=trust_config(),
            probation_interval=1,
            **overrides,
        )
        return make_service(clients, config)

    def test_boosted_client_trust_quarantined(self):
        service, ring = self.make()
        outcomes = [service.run_round(r) for r in range(3)]
        assert outcomes[0].trust_quarantined == []
        assert outcomes[1].trust_quarantined == []  # min_observations guard
        assert outcomes[2].trust_quarantined == [0]
        assert service.trust_quarantined == {0: 2}
        follow_up = service.run_round(3)
        assert follow_up.num_solicited == 4  # quarantined, on probation
        assert follow_up.num_probation == 1
        assert any(e.get("name") == "trust.quarantine" for e in ring.events)

    def test_probation_recovery_restores_client(self):
        service, ring = self.make()
        for r in range(3):
            service.run_round(r)
        # honest again from round 3: probation rounds climb the EWMA back
        fourth = service.run_round(3)
        assert fourth.trust_restored == []  # 0.59 is still below 0.6
        fifth = service.run_round(4)
        assert fifth.trust_restored == [0]
        assert service.trust_quarantined == {}
        sixth = service.run_round(5)
        assert sixth.num_solicited == 5  # back in the cohort
        assert any(e.get("name") == "trust.restore" for e in ring.events)

    def test_probation_scores_do_not_feed_aggregation(self):
        service, _ = self.make()
        for r in range(3):
            service.run_round(r)
        params_before = service.model.flat_parameters()
        outcome = service.run_round(3)
        assert 0 not in outcome.accepted
        # 4 honest ones-deltas aggregated; the probation delta is excluded
        np.testing.assert_allclose(
            service.model.flat_parameters(), params_before + ONES
        )

    def test_one_bad_report_strikes_once_and_never_scores(self):
        service, _ = self.make(malicious_fn=nan_delta)
        outcome = service.run_round(0)
        assert [cid for cid, _ in outcome.invalid] == [0]
        # exactly one strike for one bad report, and the trust tracker
        # never saw it (invalid payloads produce no observation)
        assert service._strikes == {0: 1}
        assert 0 not in service.trust.observations
        assert 0 not in service.trust.scores

    def test_strike_quarantine_and_trust_quarantine_stay_disjoint(self):
        service, _ = self.make(
            malicious_fn=nan_delta, max_client_strikes=2
        )
        history = ServiceHistory()
        for r in range(5):
            history.append(service.run_round(r))
        assert service.strike_quarantined == {0}
        assert service.trust_quarantined == {}
        assert history.trust_quarantine_events == []
        # strikes stopped at the quarantine threshold: no double counting
        assert service._strikes == {0: 2}


# -- checkpoint / resume state identity --------------------------------


class TestCheckpointResume:
    def build(self, checkpoint):
        clients = [
            ScriptClient(i, lambda r: float(r + 1) * ONES) for i in range(3)
        ]
        traffic = FixedTraffic({1: {2: 15.0}})
        return make_service(
            clients, stub_config(quorum=2), traffic, checkpoint=checkpoint
        )

    def test_resumed_run_matches_uninterrupted(self, tmp_path):
        reference, _ = self.build(CheckpointManager(tmp_path / "ref"))
        ref_history = reference.run(5)
        manager = CheckpointManager(tmp_path / "ckpt")

        first, _ = self.build(manager)
        first.run(3)  # "crash" after round 2

        resumed, _ = self.build(manager)
        resumed.context = RunContext(
            telemetry=resumed.telemetry, checkpoint=manager, resume=True
        )
        history = resumed.run(5)

        np.testing.assert_array_equal(
            resumed.model.flat_parameters(), reference.model.flat_parameters()
        )
        assert history.to_jsonable() == ref_history.to_jsonable()
        assert resumed.trust.state_dict() == reference.trust.state_dict()
        assert resumed._misses == reference._misses
        assert resumed._backoff_until == reference._backoff_until
        assert [e.client_id for e in resumed.pending] == [
            e.client_id for e in reference.pending
        ]

    def test_resume_without_checkpoint_manager_raises(self):
        service, _ = make_service([ScriptClient(0)], stub_config())
        service.context = RunContext(
            telemetry=service.telemetry, resume=True
        )
        with pytest.raises(ValueError, match="resume"):
            service.run(1)


# -- chaos acceptance: the full adversarial-traffic scenario -----------

NUM_CLIENTS = 8
MALICIOUS = (2, 5)
CHAOS_ROUNDS = 12
SPIKE_ROUNDS = (4, 5)


class BoostedClient:
    """Model-replacement attacker: ships its delta boosted n/eta-style.

    The factor is negative — the attacker pushes the global model *away*
    from the cohort direction — so both trust signals (alignment and
    norm conformity) fire.  Unknown attributes delegate to the wrapped
    client, which keeps the wrapper compatible with the defense
    pipeline's report protocol and process-pool pickling.
    """

    def __init__(self, base, factor=-12.0):
        self._base = base
        self.factor = factor

    def __getattr__(self, name):
        base = self.__dict__.get("_base")
        if base is None:  # mid-unpickle: nothing to delegate to yet
            raise AttributeError(name)
        return getattr(base, name)

    def local_update(self, model, global_params, round_index=None):
        return self._base.local_update(model, global_params, round_index) * self.factor


def make_chaos_world(seed=11):
    size, classes, total = 8, 4, 96
    data_rng = np.random.default_rng(seed)
    images = data_rng.random((total, 1, size, size))
    labels = np.tile(np.arange(classes), total // classes)
    dataset = Dataset(images, labels)
    config = LocalTrainingConfig(
        lr=0.05, momentum=0.9, batch_size=12, local_epochs=1
    )
    chunks = np.array_split(np.arange(total), NUM_CLIENTS)
    clients = [
        Client(i, dataset.subset(chunk), config, np.random.default_rng(50 + i))
        for i, chunk in enumerate(chunks)
    ]
    clients = [
        BoostedClient(c) if c.client_id in MALICIOUS else c for c in clients
    ]
    faults = FaultModel(
        straggler_prob=0.3,
        straggler_delay=(1.0, 20.0),
        deadline_seconds=10.0,
        seed=seed + 1,
    )
    clients = wrap_clients(clients, faults)
    model_rng = np.random.default_rng(seed + 2)
    model = nn.Sequential(
        nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=model_rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(4 * (size // 2) ** 2, classes, rng=model_rng),
    )
    return model, clients, dataset, faults


def chaos_traffic(seed=11):
    # burst arrivals throughout plus one flash-crowd spike big enough to
    # starve rounds 4-5 of quorum (service_time 25 blows the deadline for
    # every queue position past the first)
    return ComposedTraffic(
        [
            BurstyTraffic(seed + 3, burst_prob=0.3),
            FlashCrowdTraffic(
                seed + 4, spike_rounds=SPIKE_ROUNDS, service_time=25.0
            ),
        ]
    )


def chaos_config():
    return ServiceConfig(
        round_deadline=10.0,
        quorum=4,
        degraded_after=2,
        eval_every=0,
        trust=TrustConfig(smoothing=0.5, min_observations=3),
        cleanse_threshold=0.9,
        cleanse_cooldown=100,  # at most one cleanse in this horizon
        min_cleanse_clients=2,
    )


def run_chaos(executor_factory, seed=11):
    model, clients, dataset, faults = make_chaos_world(seed)
    hub = Telemetry()
    ring = hub.add_sink(RingBufferSink())
    with executor_factory() as executor:
        service = DefenseService(
            model,
            clients,
            dataset,
            chaos_config(),
            traffic=chaos_traffic(seed),
            context=RunContext(
                telemetry=hub, executor=executor, fault_model=faults
            ),
        )
        history = service.run(CHAOS_ROUNDS)
    hub.close()
    return service, history, model.flat_parameters(), dumps_canonical(ring.events)


def assert_degraded_transitions_match_quorum(history, degraded_after):
    """Degraded mode must track the quorum_met sequence exactly."""
    failures, degraded = 0, False
    for outcome in history.rounds:
        if outcome.quorum_met:
            expect_exit = degraded
            failures, degraded = 0, False
            assert outcome.exited_degraded is expect_exit, outcome
            assert outcome.entered_degraded is False, outcome
        else:
            failures += 1
            expect_enter = (not degraded) and failures >= degraded_after
            degraded = degraded or expect_enter
            assert outcome.entered_degraded is expect_enter, outcome
            assert outcome.exited_degraded is False, outcome
        assert outcome.degraded is degraded, outcome


@pytest.mark.chaos
class TestChaosAcceptance:
    @pytest.fixture(scope="class")
    def serial_run(self):
        return run_chaos(lambda: SerialExecutor())

    def test_every_round_commits_by_quorum_or_deadline(self, serial_run):
        _, history, _, _ = serial_run
        assert len(history) == CHAOS_ROUNDS
        deadline = chaos_config().round_deadline
        for outcome in history.rounds:
            assert 0.0 <= outcome.commit_latency <= deadline
            if outcome.quorum_met:
                assert len(outcome.accepted) >= outcome.quorum

    def test_flash_crowd_starves_quorum_then_service_recovers(self, serial_run):
        _, history, _, _ = serial_run
        failed = history.quorum_failed_rounds
        assert failed, "the flash crowd must starve at least one quorum"
        # starvation starts with the spike (deferred burst reports may
        # rescue its first round, pushing the failures one round out)
        assert all(r >= SPIKE_ROUNDS[0] for r in failed)
        assert history.degraded_rounds, "the spike must trip degraded mode"
        assert any(r.exited_degraded for r in history.rounds)
        assert_degraded_transitions_match_quorum(
            history, chaos_config().degraded_after
        )

    def test_malicious_clients_trust_quarantined(self, serial_run):
        service, history, _, _ = serial_run
        quarantined = {cid for _, cid in history.trust_quarantine_events}
        assert set(MALICIOUS) <= quarantined
        # honest clients stay in the cohort
        assert all(cid in MALICIOUS for cid in quarantined)
        assert set(MALICIOUS) <= set(service.trust_quarantined)

    def test_cohort_dip_triggers_incremental_cleanse(self, serial_run):
        _, history, _, stream = serial_run
        assert len(history.cleansed_rounds) >= 1
        assert b'"service.cleanse"' in stream

    def test_thread_executor_bitwise_identical(self, serial_run):
        _, _, params, stream = serial_run
        _, _, thread_params, thread_stream = run_chaos(
            lambda: ThreadExecutor(num_workers=3)
        )
        assert thread_params.tobytes() == params.tobytes()
        assert thread_stream == stream

    @pytest.mark.slow
    def test_process_executor_bitwise_identical(self, serial_run):
        _, _, params, stream = serial_run
        _, _, proc_params, proc_stream = run_chaos(
            lambda: ProcessExecutor(num_workers=3)
        )
        assert proc_params.tobytes() == params.tobytes()
        assert proc_stream == stream
