"""The live metrics/alerting stack wired into the defense service.

Pins the integration contracts of DESIGN.md §16: the aggregator rides
the service's own telemetry hub and seals one window per round(s); the
sealed series and the alert timeline are byte-identical across executor
engines and across a crash/resume splice (window state rides in the
service checkpoint); degraded-mode entry can be gated on a named alert;
and the emitted ``metrics.window`` / ``alert.*`` records interleave
with round spans in a schema-valid stream.
"""

import json

import numpy as np
import pytest

from repro.fl.executor import SerialExecutor, ThreadExecutor
from repro.fl.service import DefenseService, ServiceConfig
from repro.fl.transport import make_network
from repro.obs.alerts import AlertRule, ServiceMetrics
from repro.obs.context import RunContext
from repro.obs.metrics import fold_records
from repro.obs.schema import dumps_canonical, validate_stream
from repro.obs.sinks import RingBufferSink
from repro.obs.telemetry import Telemetry
from repro.persist import CheckpointManager

from tests.fl.test_service import (
    DropClient,
    FixedTraffic,
    ScriptClient,
    VectorModel,
    stub_config,
)

ONES = np.ones(4, dtype=np.float64)


def scripted(round_index):
    return float(round_index + 1) * ONES


def build(
    metrics,
    rounds=0,
    config=None,
    clients=None,
    network=None,
    traffic=None,
    checkpoint=None,
    executor=None,
    resume=False,
):
    hub = Telemetry()
    ring = hub.add_sink(RingBufferSink())
    service = DefenseService(
        VectorModel(),
        clients if clients is not None else [
            ScriptClient(i, scripted) for i in range(4)
        ],
        test_set=None,
        config=config if config is not None else stub_config(quorum=0.5),
        traffic=traffic,
        network=network,
        context=RunContext(
            telemetry=hub,
            checkpoint=checkpoint,
            executor=executor,
            resume=resume,
        ),
        metrics=metrics,
    )
    history = service.run(rounds) if rounds else None
    hub.close()
    return service, history, ring


class TestServiceIntegration:
    def test_one_window_per_round_by_default(self):
        metrics = ServiceMetrics()
        _, history, _ = build(metrics, rounds=3)
        assert [w["window"] for w in metrics.series] == [0, 1, 2]
        assert all(w["slis"]["rounds"] == 1.0 for w in metrics.series)
        assert sum(w["slis"]["committed"] for w in metrics.series) == len(
            history.committed_rounds
        )

    def test_window_rounds_batches_sealing(self):
        metrics = ServiceMetrics(window_rounds=2)
        build(metrics, rounds=5)
        # round 4 is mid-window when the run ends: only 2 sealed
        assert [w["window"] for w in metrics.series] == [0, 1]
        assert metrics.series[0]["slis"]["rounds"] == 2.0

    def test_stream_carries_windows_and_validates(self):
        metrics = ServiceMetrics()
        _, _, ring = build(metrics, rounds=3)
        assert validate_stream(ring.events) == []
        windows = [
            r for r in ring.events
            if r["kind"] == "event" and r["name"] == "metrics.window"
        ]
        assert [w["attrs"]["window"] for w in windows] == [0, 1, 2]

    def test_window_events_follow_their_round_span(self):
        metrics = ServiceMetrics()
        _, _, ring = build(metrics, rounds=2)
        seq = {}
        for record in ring.events:
            if record["kind"] == "span" and record["name"] == "service.round":
                seq[("round", record["attrs"]["round"])] = record["seq"]
            if record["kind"] == "event" and record["name"] == "metrics.window":
                seq[("window", record["attrs"]["window"])] = record["seq"]
        for i in range(2):
            assert seq[("window", i)] > seq[("round", i)]

    def test_offline_fold_of_the_stream_matches_live_series(self):
        metrics = ServiceMetrics()
        _, _, ring = build(
            metrics, rounds=6, network=make_network("chaos", seed=7)
        )
        refolded = fold_records(ring.events)
        assert json.dumps(refolded.series, sort_keys=True) == json.dumps(
            metrics.series, sort_keys=True
        )

    def test_alert_counts_match_timeline(self):
        metrics = ServiceMetrics()
        _, _, ring = build(
            metrics, rounds=10, network=make_network("chaos", seed=7)
        )
        fired = [t for t in metrics.timeline if t["action"] == "fired"]
        resolved = [t for t in metrics.timeline if t["action"] == "resolved"]
        assert fired and resolved  # the chaos preset exercises both
        events = [
            r for r in ring.events
            if r["kind"] == "event" and r["name"].startswith("alert.")
        ]
        assert len(events) == len(metrics.timeline)
        by_name = {}
        for record in ring.events:
            if record["kind"] == "counter":
                by_name[record["name"]] = record["value"]
        assert by_name.get("alert.firings") == len(fired)
        assert by_name.get("alert.resolutions") == len(resolved)


class TestEngineParity:
    """The sealed series/timeline are executor-engine invariants."""

    def run_engine(self, executor_factory):
        metrics = ServiceMetrics()
        with executor_factory() as executor:
            _, history, ring = build(
                metrics,
                rounds=8,
                network=make_network("chaos", seed=7),
                executor=executor,
            )
        return metrics, history, dumps_canonical(ring.events)

    def test_serial_and_thread_runs_are_byte_identical(self):
        serial = self.run_engine(SerialExecutor)
        threaded = self.run_engine(lambda: ThreadExecutor(num_workers=3))
        assert json.dumps(serial[0].series, sort_keys=True) == json.dumps(
            threaded[0].series, sort_keys=True
        )
        assert serial[0].timeline == threaded[0].timeline
        assert serial[2] == threaded[2]  # whole canonical stream


class TestDegradedAlertGate:
    def quorum_rule(self, for_windows):
        return AlertRule(
            "quorum-stuck",
            sli="quorum_failure_rate",
            op=">=",
            threshold=1.0,
            for_windows=for_windows,
            resolve_threshold=0.5,
        )

    def test_degraded_alert_requires_metrics(self):
        with pytest.raises(ValueError, match="degraded_alert requires"):
            build(None, config=stub_config(degraded_alert="quorum-stuck"))

    def test_degraded_alert_unknown_name_rejected_at_construction(self):
        metrics = ServiceMetrics()
        with pytest.raises(KeyError, match="no alert rule"):
            build(metrics, config=stub_config(degraded_alert="nope"))

    def test_entry_follows_the_alert_not_the_counter(self):
        # every round fails quorum.  The bare counter (degraded_after=2)
        # would degrade at round 1; the alert's for-duration of 3 holds
        # entry back until the round after the third breached window.
        metrics = ServiceMetrics(rules=[self.quorum_rule(for_windows=3)])
        _, history, _ = build(
            metrics,
            rounds=5,
            clients=[DropClient(i) for i in range(3)],
            config=stub_config(
                quorum=3, degraded_after=2, degraded_alert="quorum-stuck"
            ),
        )
        entered = [o.round_index for o in history.rounds if o.entered_degraded]
        assert entered == [3]
        assert metrics.engine.is_firing("quorum-stuck") is True

    def test_counter_path_unchanged_without_degraded_alert(self):
        metrics = ServiceMetrics(rules=[self.quorum_rule(for_windows=3)])
        _, history, _ = build(
            metrics,
            rounds=5,
            clients=[DropClient(i) for i in range(3)],
            config=stub_config(quorum=3, degraded_after=2),
        )
        entered = [o.round_index for o in history.rounds if o.entered_degraded]
        assert entered == [1]


class TestCheckpointResume:
    """A killed-and-resumed run seals the same windows and transitions."""

    def rules(self):
        # fires on the late report FixedTraffic injects, resolves after
        return [
            AlertRule(
                "late", sli="late_rate", op=">", threshold=0.0,
                for_windows=1, resolve_windows=2,
            )
        ]

    def build_run(self, checkpoint, resume=False):
        metrics = ServiceMetrics(rules=self.rules(), window_rounds=2)
        clients = [ScriptClient(i, scripted) for i in range(3)]
        traffic = FixedTraffic({1: {2: 15.0}})
        service, _, ring = build(
            metrics,
            clients=clients,
            config=stub_config(quorum=2),
            traffic=traffic,
            checkpoint=checkpoint,
            resume=resume,
        )
        return service, metrics, ring

    def test_mid_window_crash_resumes_identically(self, tmp_path):
        reference, ref_metrics, _ = self.build_run(
            CheckpointManager(tmp_path / "ref")
        )
        reference.run(6)

        manager = CheckpointManager(tmp_path / "ckpt")
        first, first_metrics, _ = self.build_run(manager)
        first.run(3)  # "crash" mid-window: window 1 has folded one round
        assert [w["window"] for w in first_metrics.series] == [0]
        assert first_metrics.timeline  # the late alert already fired

        resumed, res_metrics, _ = self.build_run(manager, resume=True)
        resumed.run(6)

        assert json.dumps(res_metrics.series, sort_keys=True) == json.dumps(
            ref_metrics.series, sort_keys=True
        )
        assert res_metrics.timeline == ref_metrics.timeline
        assert res_metrics.engine.state_dict() == ref_metrics.engine.state_dict()
        np.testing.assert_array_equal(
            resumed.model.flat_parameters(), reference.model.flat_parameters()
        )

    def test_checkpoint_meta_round_trips_metrics_state(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        service, metrics, _ = self.build_run(manager)
        service.run(3)
        entry = manager.latest_entry("service")
        assert entry is not None
        fresh, fresh_metrics, _ = self.build_run(manager, resume=True)
        # construction + restore happen inside run(); trigger restore
        # without advancing by replaying to the same horizon
        fresh.run(3)
        assert fresh_metrics.aggregator.state_dict() == (
            metrics.aggregator.state_dict()
        )

    def test_resume_without_metrics_state_in_snapshot_is_tolerated(
        self, tmp_path
    ):
        # pre-metrics snapshots restore with empty window state
        manager = CheckpointManager(tmp_path / "ckpt")
        clients = [ScriptClient(i, scripted) for i in range(3)]
        service, _, _ = build(
            None,
            clients=clients,
            config=stub_config(quorum=2),
            checkpoint=manager,
        )
        service.run(2)

        resumed, metrics, _ = self.build_run(manager, resume=True)
        resumed.run(4)  # must not raise; series continues from round 2
        assert [w["window"] for w in metrics.series] == [1]
