"""Tests for the seeded arrival-traffic generators."""

import pytest

from repro.fl.traffic import (
    AdversarialTraffic,
    BurstyTraffic,
    ComposedTraffic,
    FlashCrowdTraffic,
    SteadyTraffic,
    make_schedule,
)

COHORT = [3, 0, 7, 1]


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SteadyTraffic(seed=4),
            lambda: BurstyTraffic(seed=4, burst_prob=0.5),
            lambda: FlashCrowdTraffic(seed=4, spike_rounds=[1]),
            lambda: AdversarialTraffic(seed=4, targets=[3], deadline=5.0),
        ],
    )
    def test_same_seed_same_delays(self, factory):
        a = [factory().delays(r, COHORT) for r in range(4)]
        b = [factory().delays(r, COHORT) for r in range(4)]
        assert a == b

    def test_draws_independent_of_cohort_order(self):
        pattern = SteadyTraffic(seed=9)
        assert pattern.delays(0, COHORT) == pattern.delays(0, sorted(COHORT))

    def test_rounds_draw_independently(self):
        """Earlier rounds consume no entropy from later ones."""
        pattern = SteadyTraffic(seed=2)
        direct = pattern.delays(5, COHORT)
        for r in range(5):
            pattern.delays(r, COHORT)
        assert pattern.delays(5, COHORT) == direct

    def test_covers_whole_cohort(self):
        delays = BurstyTraffic(seed=0).delays(0, COHORT)
        assert sorted(delays) == sorted(COHORT)


class TestPatterns:
    def test_steady_within_jitter(self):
        delays = SteadyTraffic(seed=1, jitter=(0.5, 2.0)).delays(0, COHORT)
        assert all(0.5 <= d <= 2.0 for d in delays.values())

    def test_bursty_quiet_vs_burst_rounds(self):
        pattern = BurstyTraffic(
            seed=1, burst_prob=0.5, burst_delay=(10.0, 12.0), jitter=(0.0, 1.0)
        )
        maxima = [max(pattern.delays(r, COHORT).values()) for r in range(20)]
        assert any(m >= 10.0 for m in maxima)  # some burst rounds
        assert any(m <= 1.0 for m in maxima)  # some quiet rounds

    def test_flash_crowd_queues_only_on_spikes(self):
        pattern = FlashCrowdTraffic(
            seed=1, spike_rounds=[2], service_time=3.0, jitter=(0.0, 0.0)
        )
        assert set(pattern.delays(0, COHORT).values()) == {0.0}
        spike = pattern.delays(2, COHORT)
        # one client per queue position: 0, 3, 6, 9
        assert sorted(spike.values()) == [0.0, 3.0, 6.0, 9.0]

    def test_adversarial_targets_just_late(self):
        pattern = AdversarialTraffic(
            seed=1, targets=[7], deadline=10.0, margin=(0.1, 1.0)
        )
        delays = pattern.delays(0, COHORT)
        assert 10.1 <= delays[7] <= 11.0
        assert all(delays[c] == 0.0 for c in COHORT if c != 7)

    def test_composed_sums(self):
        a = SteadyTraffic(seed=1, jitter=(1.0, 1.0))
        b = SteadyTraffic(seed=2, jitter=(2.0, 2.0))
        composed = ComposedTraffic([a, b]).delays(0, COHORT)
        assert all(d == pytest.approx(3.0) for d in composed.values())


class TestValidation:
    def test_bad_intervals(self):
        with pytest.raises(ValueError, match="jitter"):
            SteadyTraffic(jitter=(2.0, 1.0))
        with pytest.raises(ValueError, match="burst_prob"):
            BurstyTraffic(burst_prob=1.5)
        with pytest.raises(ValueError, match="service_time"):
            FlashCrowdTraffic(service_time=-1.0)
        with pytest.raises(ValueError, match="deadline"):
            AdversarialTraffic(deadline=0.0)
        with pytest.raises(ValueError, match="at least one"):
            ComposedTraffic([])


class TestMakeSchedule:
    @pytest.mark.parametrize(
        "kind, cls",
        [
            ("steady", SteadyTraffic),
            ("bursty", BurstyTraffic),
            ("flash", FlashCrowdTraffic),
            ("adversarial", AdversarialTraffic),
            ("chaos", ComposedTraffic),
        ],
    )
    def test_presets(self, kind, cls):
        pattern = make_schedule(
            kind, seed=3, deadline=5.0, targets=[1], spike_rounds=[0]
        )
        assert isinstance(pattern, cls)
        assert set(pattern.delays(0, COHORT)) == set(COHORT)

    def test_overrides_reach_constructor(self):
        pattern = make_schedule(
            "steady", seed=3, overrides={"jitter": (4.0, 4.0)}
        )
        assert all(d == 4.0 for d in pattern.delays(0, COHORT).values())

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            make_schedule("tsunami")
