"""Tests for the simulated lossy transport (repro.fl.transport).

Unit coverage for the message layer — envelopes, checksums, seeded
link-fault plans, partitions, the idempotent delivery gate — plus the
service-level contracts the layer exists for:

* **transparency**: a lossless, partition-free network is byte-identical
  (parameters, history, canonical telemetry) to no network at all;
* **idempotent ingest**: duplicated and replayed updates are never
  aggregated twice (message-id dedup + epoch fencing), and a corrupted
  payload is struck through the existing invalid path;
* **partition-heal drill**: updates held behind a scheduled cut flood
  back through the admission machinery after the heal, commit-or-degrade
  per policy, with no double aggregation;
* **engine parity**: the fates are planned coordinator-side, so
  serial/thread/megabatch runs over a lossy network stay bitwise equal;
* **trust x transport**: a quarantined client's stale-epoch retransmit
  is fenced — it neither re-scores trust nor perturbs probation;
* **checkpoint/resume**: in-flight (partition-held) messages and the
  gate's dedup/fence state survive a crash byte-for-byte.
"""

import numpy as np
import pytest

from repro.fl.faults import FaultModel, wrap_client, wrap_clients
from repro.fl.service import DefenseService, ServiceConfig
from repro.fl.traffic import DRILL_PRESETS, make_drill
from repro.fl.transport import (
    DeliveryGate,
    Envelope,
    LinkModel,
    NETWORK_PRESETS,
    Partition,
    RoundLedger,
    SimulatedNetwork,
    Transit,
    make_network,
    network_names,
    payload_checksum,
)
from repro.obs.context import RunContext
from repro.obs.schema import dumps_canonical, validate_stream
from repro.obs.sinks import RingBufferSink
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.persist import CheckpointManager

from .test_service import (
    DIM,
    ONES,
    FixedTraffic,
    ScriptClient,
    VectorModel,
    make_service,
    stub_config,
    trust_config,
    turncoat,
)


# -- checksums and envelopes -------------------------------------------


class TestPayloadChecksum:
    def test_deterministic(self):
        payload = np.arange(16, dtype=np.float64)
        assert payload_checksum(payload) == payload_checksum(payload.copy())

    def test_sensitive_to_value_dtype_and_shape(self):
        payload = np.arange(16, dtype=np.float64)
        bumped = payload.copy()
        bumped[3] += 1e-9
        assert payload_checksum(bumped) != payload_checksum(payload)
        assert payload_checksum(
            payload.astype(np.float32)
        ) != payload_checksum(payload)
        assert payload_checksum(
            payload.reshape(4, 4)
        ) != payload_checksum(payload)


class TestEnvelope:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Envelope(0, 0, 1.0, ONES, kind="gossip")

    def test_clone_keeps_identity(self):
        env = Envelope(3, 2, 1.5, ONES, True, seq=7, checksum=99)
        copy = env.clone(arrival=4.0)
        assert (copy.client_id, copy.solicited_round) == (3, 2)
        assert copy.arrival == 4.0
        assert (copy.seq, copy.checksum, copy.kind) == (7, 99, "update")
        assert copy.probation is True
        assert copy.payload is env.payload

    def test_meta_roundtrip(self):
        env = Envelope(1, 4, 2.25, ONES, seq=3, checksum=11)
        record = env.to_meta("arrays.key")
        assert record["key"] == "arrays.key"
        back = Envelope.from_meta(record, ONES)
        assert back.to_meta("arrays.key") == record

    def test_from_meta_accepts_legacy_records(self):
        # histories/checkpoints written before the transport layer have
        # no seq/checksum/kind fields
        legacy = {"client_id": 2, "solicited_round": 1, "arrival": 0.5}
        env = Envelope.from_meta(legacy, ONES)
        assert env.seq is None and env.checksum is None
        assert env.kind == "update" and env.probation is False


# -- link models --------------------------------------------------------


class TestLinkModel:
    def test_validation(self):
        with pytest.raises(ValueError, match="loss_prob"):
            LinkModel(loss_prob=1.5)
        with pytest.raises(ValueError, match="latency"):
            LinkModel(latency=(3.0, 1.0))

    def test_lossless_property(self):
        assert LinkModel().lossless
        assert not LinkModel(loss_prob=0.1).lossless
        assert not LinkModel(latency=(0.0, 1.0)).lossless

    def test_plan_is_pure_function_of_message_identity(self):
        link = LinkModel(
            seed=5, loss_prob=0.3, duplicate_prob=0.3, latency=(0.1, 2.0)
        )
        a = link.plan(4, 7, "update", 2, 64)
        b = link.plan(4, 7, "update", 2, 64)
        assert (a.lost, a.latency, a.duplicated) == (
            b.lost, b.latency, b.duplicated
        )
        # a different seq is a different message: independent fate
        fates = {
            (link.plan(4, 7, "update", seq, 64).lost,
             link.plan(4, 7, "update", seq, 64).latency)
            for seq in range(8)
        }
        assert len(fates) > 1

    def test_retransmit_attempts_draw_independent_fates(self):
        link = LinkModel(seed=5, latency=(0.1, 2.0))
        first = link.plan(0, 1, "update", 0, 64, attempt=0)
        second = link.plan(0, 1, "update", 0, 64, attempt=1)
        assert first.latency != second.latency

    def test_certain_loss(self):
        plan = LinkModel(seed=1, loss_prob=1.0).plan(0, 0, "update", 0, 64)
        assert plan.lost

    def test_corruption_only_touches_payloads(self):
        link = LinkModel(seed=2, corrupt_prob=1.0)
        plan = link.plan(0, 0, "update", 0, 128)
        assert plan.corrupt_where is not None
        assert len(plan.corrupt_where) == max(1, 128 // 64)
        assert all(0 <= int(i) < 128 for i in plan.corrupt_where)
        # a payload-less solicitation has nothing to corrupt
        solicit = link.plan(0, 0, "solicit", 0, None)
        assert solicit.corrupt_where is None

    def test_heal_lag_bounded_and_deterministic(self):
        link = LinkModel(seed=3, latency=(0.5, 1.0), jitter=(0.0, 0.25))
        lag = link.heal_lag(2, 4, "update", 1)
        assert lag == link.heal_lag(2, 4, "update", 1)
        assert 0.5 <= lag <= 1.25


class TestPartition:
    def test_validation(self):
        with pytest.raises(ValueError, match="heal"):
            Partition(10.0, 10.0)
        with pytest.raises(ValueError, match="mode"):
            Partition(0.0, 5.0, mode="sever")

    def test_covers_window_and_clients(self):
        cut = Partition(10.0, 20.0, clients=[1, 3])
        assert cut.covers(10.0, 1)  # start inclusive
        assert not cut.covers(20.0, 1)  # heal exclusive
        assert not cut.covers(15.0, 2)  # not in the cut
        everyone = Partition(10.0, 20.0)
        assert everyone.covers(15.0, 99)

    def test_transit_fate_validated(self):
        with pytest.raises(ValueError, match="fate"):
            Transit("teleported", [])


# -- the idempotent delivery gate --------------------------------------


class TestDeliveryGate:
    def env(self, cid=0, rnd=0, seq=0, kind="update"):
        return Envelope(cid, rnd, 1.0, ONES, seq=seq, kind=kind)

    def test_dedup_after_processing(self):
        gate = DeliveryGate()
        env = self.env(seq=4)
        assert gate.check(env) == "fresh"
        gate.mark_processed(env)
        assert gate.check(env.clone(arrival=9.0)) == "duplicate"
        assert gate.dedup_hits == 1
        # a different message from the same client is unaffected
        assert gate.check(self.env(seq=5)) == "fresh"

    def test_epoch_fence_rejects_stale_rounds(self):
        gate = DeliveryGate()
        gate.mark_aggregated(3, 2)
        assert gate.fence_round(3) == 2
        assert gate.check(self.env(cid=3, rnd=2, seq=9)) == "stale"
        assert gate.check(self.env(cid=3, rnd=1, seq=10)) == "stale"
        assert gate.check(self.env(cid=3, rnd=3, seq=11)) == "fresh"
        assert gate.fenced_total == 2
        # the fence never moves backwards
        gate.mark_aggregated(3, 1)
        assert gate.fence_round(3) == 2

    def test_solicitations_are_not_fenced(self):
        gate = DeliveryGate()
        gate.mark_aggregated(0, 5)
        assert gate.check(self.env(rnd=2, seq=0, kind="solicit")) == "fresh"

    def test_legacy_envelopes_pass_through(self):
        gate = DeliveryGate()
        legacy = Envelope(0, 0, 1.0, ONES)  # seq None
        assert gate.check(legacy) == "fresh"
        gate.mark_processed(legacy)  # no-op
        assert gate.check(legacy) == "fresh"

    def test_state_roundtrip(self):
        gate = DeliveryGate()
        for seq in range(3):
            gate.mark_processed(self.env(cid=1, seq=seq))
        gate.mark_aggregated(1, 4)
        gate.check(self.env(cid=1, seq=0))  # dedup hit
        restored = DeliveryGate()
        restored.load_state_dict(gate.state_dict())
        assert restored.state_dict() == gate.state_dict()
        assert restored.check(self.env(cid=1, seq=2)) == "duplicate"
        assert restored.check(self.env(cid=1, rnd=4, seq=9)) == "stale"


class TestRoundLedger:
    def emitted_counters(self, ledger):
        # counter increments flush into the ring on close
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        ledger.emit_round_counters(hub)
        hub.close()
        return [e["name"] for e in ring.events if e["kind"] == "counter"]

    def test_network_counters_emitted_only_when_nonzero(self):
        quiet = RoundLedger()
        names = self.emitted_counters(quiet)
        assert not any(n.startswith("net.") for n in names)
        assert "service.reports_admitted" in names

        noisy = RoundLedger()
        noisy.lost.append((0, "loss"))
        noisy.dedup.append(1)
        names = self.emitted_counters(noisy)
        assert {"net.messages_lost", "net.dedup_hits"} <= set(names)
        assert "net.messages_fenced" not in names
        assert noisy.network_counts()["lost"] == 1


# -- spec parsing -------------------------------------------------------


class TestMakeNetwork:
    def test_preset_names(self):
        assert network_names() == sorted(NETWORK_PRESETS)
        assert {"lossless", "lossy", "dupstorm", "partition", "chaos"} <= set(
            network_names()
        )

    def test_unknown_name_and_param_rejected(self):
        with pytest.raises(ValueError, match="unknown network"):
            make_network("carrier_pigeon")
        with pytest.raises(ValueError, match="parameters"):
            make_network("lossy:bandwidth=56k")

    def test_partition_needs_start_and_heal(self):
        with pytest.raises(ValueError, match="start and heal"):
            make_network("lossless:start=5")

    def test_overrides_and_naming(self):
        net = make_network("lossy:loss=0.5", seed=3)
        assert net.link.loss_prob == 0.5
        assert net.link.seed == 3
        assert net.name == "lossy:loss=0.5"
        assert make_network("lossy", seed=3).name == "lossy"

    def test_spec_seed_overrides_keyword(self):
        assert make_network("lossless:seed=9", seed=4).link.seed == 9

    def test_lossless_is_transparent_and_chaos_is_not(self):
        assert make_network("lossless").transparent
        chaos = make_network("chaos")
        assert not chaos.transparent
        assert len(chaos.partitions) == 1

    def test_drill_presets_resolve(self):
        for name in DRILL_PRESETS:
            traffic, spec = make_drill(name, seed=1)
            assert traffic.delays(0, [0, 1]) is not None
            assert isinstance(make_network(spec), SimulatedNetwork)
        with pytest.raises(ValueError, match="unknown drill"):
            make_drill("smooth_sailing")


# -- transmit unit behavior --------------------------------------------


def wire_env(cid=0, rnd=0, seq=0, payload=None, kind="update"):
    payload = ONES if payload is None and kind == "update" else payload
    checksum = payload_checksum(payload) if payload is not None else None
    return Envelope(cid, rnd, 0.0, payload, seq=seq, checksum=checksum, kind=kind)


class TestTransmit:
    def test_transparent_network_is_a_pass_through(self):
        net = SimulatedNetwork()
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        env = Envelope(0, 0, 0.0, ONES)  # even a legacy, seq-less envelope
        transit = net.transmit(
            env, round_index=0, sent_at=3.5, telemetry=hub
        )
        hub.close()
        assert transit.fate == "delivered"
        assert transit.deliveries == [env]
        assert env.arrival == 3.5
        assert all(e["kind"] != "event" for e in ring.events)
        assert net.stats["sent"] == 0

    def test_wire_messages_need_a_seq(self):
        net = SimulatedNetwork(link=LinkModel(loss_prob=0.5))
        with pytest.raises(ValueError, match="seq"):
            net.transmit(
                Envelope(0, 0, 0.0, ONES),
                round_index=0,
                sent_at=0.0,
                telemetry=NULL_TELEMETRY,
            )

    def test_certain_loss_recorded(self):
        net = SimulatedNetwork(link=LinkModel(seed=1, loss_prob=1.0))
        ledger = RoundLedger()
        transit = net.transmit(
            wire_env(),
            round_index=0,
            sent_at=0.0,
            telemetry=NULL_TELEMETRY,
            ledger=ledger,
        )
        assert transit.fate == "lost" and transit.deliveries == []
        assert ledger.lost == [(0, "loss")]
        assert net.stats == dict(
            net.stats, sent=1, lost=1, delivered=0
        )

    def test_duplicate_carries_clean_payload_when_first_copy_corrupts(self):
        net = SimulatedNetwork(
            link=LinkModel(seed=4, duplicate_prob=1.0, corrupt_prob=1.0)
        )
        payload = np.arange(128, dtype=np.float64)
        env = wire_env(payload=payload)
        transit = net.transmit(
            env, round_index=0, sent_at=1.0, telemetry=NULL_TELEMETRY
        )
        first, dup = transit.deliveries
        assert dup.arrival > first.arrival
        assert payload_checksum(first.payload) != env.checksum
        assert payload_checksum(dup.payload) == env.checksum
        assert net.stats["duplicates"] == net.stats["corrupted"] == 1

    def test_partition_holds_updates_until_heal(self):
        net = SimulatedNetwork(
            link=LinkModel(seed=2), partitions=[Partition(5.0, 20.0)]
        )
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        transit = net.transmit(
            wire_env(cid=3), round_index=1, sent_at=10.0, telemetry=hub
        )
        assert transit.fate == "held" and transit.deliveries == []
        assert net.in_flight() == 1
        released = net.begin_round(2, 20.0, hub)
        hub.close()
        assert [env.client_id for env in released] == [3]
        assert released[0].arrival >= 20.0
        assert net.in_flight() == 0
        names = [e["name"] for e in ring.events if e["kind"] == "event"]
        assert "net.healed" in names

    def test_partition_drop_mode_and_solicits_lose_outright(self):
        net = SimulatedNetwork(
            link=LinkModel(seed=2),
            partitions=[Partition(5.0, 20.0, mode="drop")],
        )
        ledger = RoundLedger()
        update = net.transmit(
            wire_env(), round_index=1, sent_at=10.0,
            telemetry=NULL_TELEMETRY, ledger=ledger,
        )
        assert update.fate == "partition_dropped"
        solicit_net = SimulatedNetwork(
            link=LinkModel(seed=2), partitions=[Partition(5.0, 20.0)]
        )
        solicit = solicit_net.transmit(
            wire_env(kind="solicit", payload=None),
            round_index=1, sent_at=10.0,
            telemetry=NULL_TELEMETRY, hold_partitioned=False,
        )
        assert solicit.fate == "partition_dropped"
        assert ledger.lost == [(0, "partition")]

    def test_arrival_inversion_counts_as_reordering(self):
        # a tiny jitter keeps the link non-lossless (so the wire path
        # runs) without closing the 5s send gap
        net = SimulatedNetwork(link=LinkModel(seed=3, jitter=(0.0, 0.1)))
        net.transmit(
            wire_env(seq=0), round_index=0, sent_at=10.0,
            telemetry=NULL_TELEMETRY,
        )
        ledger = RoundLedger()
        net.transmit(
            wire_env(seq=1), round_index=0, sent_at=5.0,
            telemetry=NULL_TELEMETRY, ledger=ledger,
        )
        assert net.stats["reordered"] == 1
        assert ledger.reordered == [0]

    def test_pack_and_load_state_roundtrip(self):
        net = SimulatedNetwork(
            link=LinkModel(seed=2, latency=(0.0, 0.5)),
            partitions=[Partition(5.0, 20.0)],
        )
        net.transmit(
            wire_env(cid=1, seq=3, payload=2.0 * ONES),
            round_index=1, sent_at=10.0, telemetry=NULL_TELEMETRY,
        )
        net.transmit(
            wire_env(cid=2, seq=0), round_index=0, sent_at=1.0,
            telemetry=NULL_TELEMETRY,
        )
        meta, arrays = net.pack_state()
        twin = SimulatedNetwork(
            link=LinkModel(seed=2, latency=(0.0, 0.5)),
            partitions=[Partition(5.0, 20.0)],
        )
        twin.load_state(meta, arrays)
        assert twin.stats == net.stats
        assert twin.in_flight() == 1
        assert twin.latencies == net.latencies
        twin_meta, twin_arrays = twin.pack_state()
        assert twin_meta == meta
        assert all(
            np.array_equal(twin_arrays[k], arrays[k]) for k in arrays
        )


# -- service integration ------------------------------------------------


def run_stub_service(network, *, rounds=4, clients=None, traffic=None,
                     config=None):
    """A stub service run returning (service, history, params, stream)."""
    hub = Telemetry()
    ring = hub.add_sink(RingBufferSink())
    service = DefenseService(
        VectorModel(),
        clients if clients is not None else [ScriptClient(i) for i in range(3)],
        test_set=None,
        config=config if config is not None else stub_config(quorum=2),
        traffic=traffic,
        network=network,
        context=RunContext(telemetry=hub),
    )
    history = service.run(rounds)
    hub.close()
    return (
        service,
        history,
        service.model.flat_parameters(),
        dumps_canonical(ring.events),
    )


class TestLosslessTransparency:
    def test_lossless_network_is_byte_identical_to_direct(self):
        # a late client exercises the defer path on both sides
        traffic = {1: {2: 15.0}}
        _, direct_history, direct_params, direct_stream = run_stub_service(
            None, traffic=FixedTraffic(traffic)
        )
        _, history, params, stream = run_stub_service(
            make_network("lossless", seed=9), traffic=FixedTraffic(traffic)
        )
        assert params.tobytes() == direct_params.tobytes()
        assert history.to_jsonable() == direct_history.to_jsonable()
        assert stream == direct_stream

    def test_gate_is_active_even_without_a_network(self):
        # seq/checksum are stamped on the direct path too: the fence
        # exists before any wire does
        service, history, _, _ = run_stub_service(None, rounds=2)
        assert service.gate.fence_round(0) == 1
        origins = history.aggregated_origins
        assert len(origins) == len(set(origins))


class TestLossyService:
    def test_in_flight_corruption_is_struck_as_invalid(self):
        network = SimulatedNetwork(
            link=LinkModel(seed=1, corrupt_prob=1.0), name="corruptor"
        )
        service, history, params, _ = run_stub_service(
            network, rounds=2, clients=[ScriptClient(0), ScriptClient(1)],
            config=stub_config(quorum=1),
        )
        reasons = {
            reason for r in history.rounds for _, reason in r.invalid
        }
        assert reasons == {"checksum mismatch (corrupted in transit)"}
        assert history.committed_rounds == []
        assert params.tobytes() == np.zeros(DIM).tobytes()
        assert service._strikes  # corruption feeds the strike machinery
        assert network.stats["corrupted"] > 0

    def test_total_loss_reads_as_silence(self):
        network = SimulatedNetwork(
            link=LinkModel(seed=1, loss_prob=1.0), name="blackhole"
        )
        _, history, _, _ = run_stub_service(
            network, rounds=2, clients=[ScriptClient(0)],
            config=stub_config(quorum=1),
        )
        assert history.committed_rounds == []
        reasons = {
            reason for r in history.rounds for _, reason in r.no_response
        }
        assert reasons <= {
            "solicitation lost in transit",
            "update lost in transit",
        }
        assert history.network_counts()["lost"] > 0

    def test_wire_duplicates_dedup_not_double_aggregate(self):
        network = SimulatedNetwork(
            link=LinkModel(seed=6, duplicate_prob=1.0, duplicate_lag=(0.0, 0.1)),
            name="dupwire",
        )
        _, history, params, _ = run_stub_service(
            network, rounds=3, clients=[ScriptClient(0), ScriptClient(1)],
            config=stub_config(quorum=2),
        )
        assert history.committed_rounds == [0, 1, 2]
        # every delivered second copy was a dedup hit, never a report
        assert history.network_counts()["dedup"] == 6
        origins = history.aggregated_origins
        assert len(origins) == len(set(origins)) == 6
        np.testing.assert_allclose(params, 3.0 * ONES)


class TestPartitionHealDrill:
    def test_drill_commits_or_degrades_with_no_double_aggregation(self):
        rounds = 7
        traffic, spec = make_drill("partition_heal", seed=3)
        network = make_network(spec, seed=5)
        clients = [ScriptClient(i) for i in range(4)]
        service, history, _, stream = run_stub_service(
            network, rounds=rounds, clients=clients,
            traffic=FixedTraffic({r: {i: 2.5 for i in range(4)} for r in range(rounds)}),
            config=stub_config(quorum=0.5, degraded_after=2),
        )
        assert len(history) == rounds
        counts = history.network_counts()
        assert counts["held"] > 0, "the cut must catch updates in flight"
        assert network.in_flight() == 0, "everything floods back post-heal"
        origins = history.aggregated_origins
        assert len(origins) == len(set(origins)), "double aggregation"
        # commit-or-degrade: every round either met quorum or is an
        # explicit quorum failure; nothing hangs
        for outcome in history.rounds:
            assert outcome.quorum_met or outcome.round_index in (
                history.quorum_failed_rounds
            )
        held_reasons = [
            reason
            for r in history.rounds
            for _, reason in r.no_response
            if reason == "update held behind partition"
        ]
        assert held_reasons, "the sender sees silence while the cut holds"
        assert b'"net.healed"' in stream


class TestTrustTransportInteraction:
    """Satellite: stale-epoch retransmits never touch trust/probation."""

    def build(self):
        clients = [ScriptClient(0, turncoat)] + [
            ScriptClient(i) for i in range(1, 5)
        ]
        config = stub_config(
            quorum=1.0,
            trust_enabled=True,
            trust=trust_config(),
            probation_interval=1,
        )
        return make_service(clients, config)

    def stale_retransmit(self, service):
        """A lost-then-retransmitted copy of client 0's round-1 update:
        an unseen seq (the first copy never arrived) carrying an epoch
        the fence has already aggregated."""
        payload = turncoat(1)
        return Envelope(
            0, 1, 0.05, payload,
            seq=999, checksum=payload_checksum(payload),
        )

    def test_stale_retransmit_is_fenced_not_rescored(self):
        baseline, _ = self.build()
        service, _ = self.build()
        for r in range(3):
            baseline.run_round(r)
            service.run_round(r)
        assert service.trust_quarantined == {0: 2}
        assert service.gate.fence_round(0) == 2

        service.pending.append(self.stale_retransmit(service))
        fourth_base = baseline.run_round(3)
        fourth = service.run_round(3)
        assert fourth.fenced == [0]
        assert fourth.accepted == fourth_base.accepted
        # the fenced copy produced no trust observation: the tracker
        # state is identical to the run that never saw the retransmit
        assert service.trust.state_dict() == baseline.trust.state_dict()
        # and probation is not reset: restoration lands on the same
        # round it would have without the replay
        fifth_base = baseline.run_round(4)
        fifth = service.run_round(4)
        assert fifth.trust_restored == fifth_base.trust_restored == [0]
        assert service.trust_quarantined == {}

    def test_processed_duplicate_of_probation_report_is_deduped(self):
        service, _ = self.build()
        for r in range(3):
            service.run_round(r)
        fourth = service.run_round(3)
        assert fourth.num_probation == 1
        baseline_state = service.trust.state_dict()
        # replay the exact probation message id the gate just processed
        seq = service._seq["update:0"] - 1
        payload = turncoat(3)
        service.pending.append(
            Envelope(
                0, 3, 0.05, payload, True,
                seq=seq, checksum=payload_checksum(payload),
            )
        )
        fifth = service.run_round(4)
        assert 0 in fifth.dedup
        assert service.trust.state_dict() != baseline_state  # round 4's
        # genuine probation report scored; the replay added nothing on
        # top (one observation per round, same as the clean timeline)
        obs = service.trust.observations[0]
        assert obs == 5  # rounds 0-2 accepted + rounds 3-4 probation


class TestCheckpointResumeTransport:
    SPEC = "partition:start=10.5,heal=45,latency_hi=0"
    ROUNDS = 6

    def build(self, checkpoint):
        clients = [
            ScriptClient(i, lambda r: float(r + 1) * ONES) for i in range(3)
        ]
        # checkpoints are only cut on committed rounds, so the held
        # message must coexist with a quorum: clients 0/1 report fast
        # (round 0 commits, quorum=2) while client 2's update is pushed
        # past the 10.5s cut and held in flight at the snapshot
        traffic = FixedTraffic(
            {r: {0: 1.0, 1: 1.0, 2: 11.0} for r in range(self.ROUNDS)}
        )
        hub = Telemetry()
        service = DefenseService(
            VectorModel(),
            clients,
            test_set=None,
            config=stub_config(quorum=2),
            traffic=traffic,
            network=make_network(self.SPEC, seed=7),
            context=RunContext(telemetry=hub, checkpoint=checkpoint),
        )
        return service

    def test_in_flight_state_survives_resume(self, tmp_path):
        reference = self.build(CheckpointManager(tmp_path / "ref"))
        ref_history = reference.run(self.ROUNDS)
        assert ref_history.network_counts()["held"] > 0

        manager = CheckpointManager(tmp_path / "ckpt")
        first = self.build(manager)
        first.run(3)  # "crash" mid-partition, with messages in flight
        assert first.network.in_flight() > 0
        snapshot = manager.load_latest("service")
        assert snapshot.meta["transport"]["network"]["held"]

        resumed = self.build(manager)
        resumed.context = RunContext(
            telemetry=resumed.telemetry, checkpoint=manager, resume=True
        )
        history = resumed.run(self.ROUNDS)

        np.testing.assert_array_equal(
            resumed.model.flat_parameters(),
            reference.model.flat_parameters(),
        )
        assert history.to_jsonable() == ref_history.to_jsonable()
        assert resumed.gate.state_dict() == reference.gate.state_dict()
        assert resumed._seq == reference._seq
        assert resumed.network.stats == reference.network.stats
        assert resumed.network.in_flight() == 0
        origins = history.aggregated_origins
        assert len(origins) == len(set(origins))


# -- engine parity over a lossy wire -----------------------------------


def run_lossy_engine(executor_factory, seed=11, rounds=5):
    """A real (trained-client) service run over the chaos network."""
    from repro.eval.parallel_bench import build_bench_world
    from repro.fl.executor import (  # noqa: F401  (re-export for tests)
        MegabatchExecutor,
        ProcessExecutor,
        SerialExecutor,
        ThreadExecutor,
    )
    from repro.fl.traffic import make_schedule

    model, clients, dataset = build_bench_world("smoke", seed=seed)
    faults = FaultModel(
        straggler_prob=0.3,
        straggler_delay=(1.0, 20.0),
        duplicate_prob=0.3,
        deadline_seconds=10.0,
        seed=seed + 2,
    )
    hub = Telemetry()
    ring = hub.add_sink(RingBufferSink())
    with executor_factory() as executor:
        service = DefenseService(
            model,
            wrap_clients(clients, faults),
            dataset,
            ServiceConfig(round_deadline=10.0, quorum=0.5, eval_every=0),
            traffic=make_schedule("bursty", seed + 3),
            network=make_network("chaos", seed=seed + 5),
            context=RunContext(
                telemetry=hub, executor=executor, fault_model=faults
            ),
        )
        history = service.run(rounds)
    hub.close()
    return history, model.flat_parameters(), dumps_canonical(ring.events)


@pytest.mark.chaos
class TestLossyEngineParity:
    """Message fates are planned coordinator-side from message identity,
    so the executor engine must not leak into results: every engine is
    bitwise identical over the same lossy wire."""

    @pytest.fixture(scope="class")
    def serial_run(self):
        from repro.fl.executor import SerialExecutor

        return run_lossy_engine(lambda: SerialExecutor())

    def test_chaos_wire_is_actually_exercised(self, serial_run):
        history, _, stream = serial_run
        counts = history.network_counts()
        assert counts["lost"] > 0 or counts["held"] > 0
        origins = history.aggregated_origins
        assert len(origins) == len(set(origins))
        assert b'"net.sent"' in stream

    def test_thread_executor_bitwise_identical(self, serial_run):
        from repro.fl.executor import ThreadExecutor

        history, params, stream = serial_run
        t_history, t_params, t_stream = run_lossy_engine(
            lambda: ThreadExecutor(num_workers=3)
        )
        assert t_params.tobytes() == params.tobytes()
        assert t_history.to_jsonable() == history.to_jsonable()
        assert t_stream == stream

    def test_megabatch_executor_bitwise_identical(self, serial_run):
        from repro.fl.executor import MegabatchExecutor

        history, params, stream = serial_run
        m_history, m_params, m_stream = run_lossy_engine(
            lambda: MegabatchExecutor()
        )
        assert m_params.tobytes() == params.tobytes()
        assert m_history.to_jsonable() == history.to_jsonable()
        assert m_stream == stream

    @pytest.mark.slow
    def test_process_executor_bitwise_identical(self, serial_run):
        from repro.fl.executor import ProcessExecutor

        history, params, stream = serial_run
        p_history, p_params, p_stream = run_lossy_engine(
            lambda: ProcessExecutor(num_workers=3)
        )
        assert p_params.tobytes() == params.tobytes()
        assert p_history.to_jsonable() == history.to_jsonable()
        assert p_stream == stream


# -- the client-level duplicate fault ----------------------------------


class TestDuplicateFault:
    def test_validation(self):
        with pytest.raises(ValueError, match="duplicate_prob"):
            FaultModel(duplicate_prob=1.5)
        with pytest.raises(ValueError, match="duplicate_lag"):
            FaultModel(duplicate_prob=0.5, duplicate_lag=(3.0, 1.0))

    def test_disabled_duplicate_consumes_no_rng(self):
        """duplicate_prob=0 must leave every pre-existing fault schedule
        bit-for-bit unchanged (the zero-consumption guard)."""
        plans = []
        for kwargs in ({}, {"duplicate_prob": 0.0}):
            faults = FaultModel(
                straggler_prob=0.4,
                straggler_delay=(1.0, 5.0),
                stale_prob=0.2,
                deadline_seconds=10.0,
                seed=13,
                **kwargs,
            )
            client = wrap_client(ScriptClient(0), faults)
            plans.append(
                [
                    (p.action, p.delay, p.duplicate, p.duplicate_lag)
                    for p in (client.plan_local_update(DIM) for _ in range(40))
                ]
            )
        assert plans[0] == plans[1]

    def test_certain_duplicates_draw_lags(self):
        faults = FaultModel(
            duplicate_prob=1.0, duplicate_lag=(0.5, 2.0), seed=3
        )
        client = wrap_client(ScriptClient(0), faults)
        for _ in range(10):
            plan = client.plan_local_update(DIM)
            assert plan.duplicate
            assert 0.5 <= plan.duplicate_lag <= 2.0
        assert faults.draw_counts["duplicate"] == 10
        assert faults.draw_counts["duplicate_lag"] == 10

    def test_duplicate_fault_routes_through_the_dedup_ledger(self):
        """The client-level retransmit and the wire's accounting share
        one ledger: each duplicate shows up as a net.dedup hit, and the
        round aggregates each client exactly once."""
        rounds = 3
        faults = FaultModel(duplicate_prob=1.0, duplicate_lag=(0.1, 0.5), seed=5)
        clients = wrap_clients(
            [ScriptClient(0), ScriptClient(1)], faults
        )
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        service = DefenseService(
            VectorModel(),
            clients,
            test_set=None,
            config=stub_config(quorum=2),
            context=RunContext(telemetry=hub, fault_model=faults),
        )
        history = service.run(rounds)
        hub.close()
        assert history.committed_rounds == [0, 1, 2]
        assert history.network_counts()["dedup"] == 2 * rounds
        origins = history.aggregated_origins
        assert len(origins) == len(set(origins)) == 2 * rounds
        np.testing.assert_allclose(
            service.model.flat_parameters(), rounds * ONES
        )
        dedup_events = [
            e for e in ring.events if e.get("name") == "net.dedup"
        ]
        assert len(dedup_events) == 2 * rounds
        assert validate_stream(ring.events) == []
