"""Tests for online per-client trust scoring (repro.fl.trust)."""

import json

import numpy as np
import pytest

from repro.fl.trust import TrustConfig, TrustTracker

DIM = 4
ONES = np.ones(DIM, dtype=np.float64)


def make_tracker(**overrides):
    defaults = dict(smoothing=0.5, min_observations=3)
    defaults.update(overrides)
    return TrustTracker(TrustConfig(**defaults))


class TestTrustConfig:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(smoothing=0.0), "smoothing"),
            (dict(smoothing=1.5), "smoothing"),
            (dict(alignment_weight=-0.1), "weights"),
            (dict(alignment_weight=0.0, norm_weight=0.0), "weight"),
            (dict(reference="mode"), "reference"),
            (dict(quarantine_threshold=0.7, recover_threshold=0.6), "recover"),
            (dict(quarantine_threshold=-0.1), "recover"),
            (dict(min_observations=0), "min_observations"),
            (dict(initial=1.5), "initial"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            TrustConfig(**kwargs)

    def test_signal_weights_normalize(self):
        config = TrustConfig(alignment_weight=3.0, norm_weight=1.0)
        assert config.alignment_weight == pytest.approx(0.75)
        assert config.norm_weight == pytest.approx(0.25)


class TestScoreRound:
    def test_identical_deltas_score_one(self):
        tracker = make_tracker()
        scores = tracker.score_round([0, 1, 2], [ONES, ONES, ONES])
        assert scores == {0: 1.0, 1: 1.0, 2: 1.0}

    def test_boosted_anti_cohort_delta_scores_low(self):
        tracker = make_tracker()
        scores = tracker.score_round(
            [0, 1, 2, 3, 4], [-8.0 * ONES, ONES, ONES, ONES, ONES]
        )
        # alignment 0 (opposite the median), conformity 2/16
        assert scores[0] == pytest.approx(0.0625)
        assert all(scores[c] == 1.0 for c in (1, 2, 3, 4))
        assert tracker.trust(0) == pytest.approx(0.53125)  # EWMA from 1.0

    def test_under_norm_updates_are_not_penalized(self):
        tracker = make_tracker()
        scores = tracker.score_round([0, 1, 2], [0.1 * ONES, ONES, ONES])
        # a small-data client is aligned and under-norm: full conformity
        assert scores[0] == 1.0

    def test_fewer_than_two_deltas_scores_nothing(self):
        tracker = make_tracker()
        assert tracker.score_round([], []) == {}
        assert tracker.score_round([0], [ONES]) == {}
        assert tracker.scores == {}
        assert tracker.observations == {}

    def test_mismatched_lengths_raise(self):
        tracker = make_tracker()
        with pytest.raises(ValueError, match="ids for"):
            tracker.score_round([0, 1], [ONES])

    def test_num_reference_keeps_probation_row_out_of_the_yardstick(self):
        tracker = make_tracker()
        # trusted cohort first, the suspected row appended after it
        scores = tracker.score_round(
            [1, 2, 0], [ONES, ONES, -8.0 * ONES], num_reference=2
        )
        assert scores[1] == 1.0 and scores[2] == 1.0
        assert scores[0] == pytest.approx(0.0625)  # judged vs the cohort

    def test_num_reference_below_two_falls_back_to_full_matrix(self):
        frozen = make_tracker()
        fallback = make_tracker()
        ids = [0, 1, 2]
        deltas = [ONES, ONES, 2.0 * ONES]
        assert frozen.score_round(ids, deltas, num_reference=1) == (
            fallback.score_round(ids, deltas)
        )

    def test_all_zero_deltas_are_neutral(self):
        tracker = make_tracker()
        zero = np.zeros(DIM)
        scores = tracker.score_round([0, 1], [zero, zero])
        # alignment is the neutral 0.5, zero norm conforms fully
        assert scores == {0: 0.75, 1: 0.75}

    def test_mean_reference_option(self):
        tracker = make_tracker(reference="mean")
        scores = tracker.score_round([0, 1], [ONES, ONES])
        assert scores == {0: 1.0, 1: 1.0}


class TestPolicyInputs:
    def sink(self, tracker, client_id=0, rounds=3):
        """Drive one client's EWMA down with anti-cohort rounds."""
        for _ in range(rounds):
            tracker.score_round(
                [client_id, 1, 2, 3, 4],
                [-8.0 * ONES, ONES, ONES, ONES, ONES],
            )

    def test_unscored_client_has_initial_trust(self):
        tracker = make_tracker(initial=0.9)
        assert tracker.trust(7) == 0.9

    def test_min_observations_gates_quarantine(self):
        tracker = make_tracker()
        self.sink(tracker, rounds=2)
        assert tracker.trust(0) < 0.4  # already below threshold...
        assert tracker.quarantine_candidates() == []  # ...but unripe
        self.sink(tracker, rounds=1)
        assert tracker.quarantine_candidates() == [0]

    def test_exclude_filters_already_handled_clients(self):
        tracker = make_tracker()
        self.sink(tracker)
        assert tracker.quarantine_candidates(exclude={0}) == []

    def test_recovered_threshold(self):
        tracker = make_tracker()
        self.sink(tracker)
        assert tracker.recovered([0]) == []
        for _ in range(3):  # honest probation rounds climb the EWMA back
            tracker.score_round([1, 2, 0], [ONES, ONES, ONES], num_reference=2)
        assert tracker.recovered([0]) == [0]

    def test_cohort_trust_averages_scored_clients_only(self):
        tracker = make_tracker()
        assert tracker.cohort_trust([0, 1]) is None
        tracker.score_round([0, 1], [ONES, ONES])
        assert tracker.cohort_trust([0, 1, 99]) == pytest.approx(1.0)

    def test_state_dict_json_roundtrip(self):
        tracker = make_tracker()
        self.sink(tracker)
        state = json.loads(json.dumps(tracker.state_dict()))
        restored = make_tracker()
        restored.load_state_dict(state)
        assert restored.scores == tracker.scores
        assert restored.observations == tracker.observations
        assert restored.quarantine_candidates() == [0]
