"""Integration tests: the divergence watchdog inside the round loop."""

import numpy as np
import pytest

from repro.fl.aggregation import fedavg
from repro.fl.server import FederatedServer
from repro.obs.sinks import RingBufferSink
from repro.obs.telemetry import Telemetry
from repro.persist import CheckpointManager, DivergenceWatchdog

from .test_resume import make_world


class PoisonAggregate:
    """fedavg that returns a poisoned update on one scheduled call."""

    def __init__(self, poison_call: int, poison):
        self.poison_call = poison_call
        self.poison = poison
        self.calls = 0

    def __call__(self, stacked: np.ndarray) -> np.ndarray:
        self.calls += 1
        update = fedavg(stacked)
        if self.calls == self.poison_call:
            update = self.poison(update)
        return update


def inject_nan(update: np.ndarray) -> np.ndarray:
    poisoned = update.copy()
    poisoned[0] = np.nan  # assignment, not arithmetic: no RuntimeWarning
    return poisoned


class TestAggregateVeto:
    def test_non_finite_update_never_applied(self):
        model, clients, dataset = make_world()
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        watchdog = DivergenceWatchdog()
        server = FederatedServer(
            model,
            clients,
            dataset,
            aggregator=PoisonAggregate(2, inject_nan),
            telemetry=hub,
            watchdog=watchdog,
        )
        history = server.train(3)
        hub.close()

        assert np.isfinite(model.flat_parameters()).all()
        assert history.rounds[1].diverged
        assert "non-finite" in history.rounds[1].divergence_reason
        assert not history.rounds[0].diverged
        assert not history.rounds[2].diverged
        assert watchdog.rollbacks == 1
        rollbacks = [e for e in ring.events if e["name"] == "watchdog.rollback"]
        assert len(rollbacks) == 1
        assert rollbacks[0]["attrs"]["stage"] == "aggregate"
        assert rollbacks[0]["attrs"]["round"] == 1

    def test_vetoed_round_leaves_params_untouched(self):
        model, clients, dataset = make_world()
        watchdog = DivergenceWatchdog()
        server = FederatedServer(
            model,
            clients,
            dataset,
            aggregator=PoisonAggregate(2, inject_nan),
            watchdog=watchdog,
        )
        server.train(1)
        before = model.flat_parameters()
        server.run_round(1)  # the poisoned round
        np.testing.assert_array_equal(model.flat_parameters(), before)

    def test_norm_explosion_vetoed(self):
        model, clients, dataset = make_world()
        amplify = lambda u: np.full_like(u, 1e6)
        server = FederatedServer(
            model,
            clients,
            dataset,
            aggregator=PoisonAggregate(1, amplify),
            watchdog=DivergenceWatchdog(max_update_norm=100.0),
        )
        history = server.train(1)
        assert history.rounds[0].diverged
        assert "norm" in history.rounds[0].divergence_reason

    def test_without_watchdog_rounds_never_diverge(self):
        model, clients, dataset = make_world()
        server = FederatedServer(model, clients, dataset)
        history = server.train(2)
        assert history.diverged_rounds == []


class TestCollapseRollback:
    def test_collapse_restores_pre_round_params(self, monkeypatch):
        scripted = iter([0.8, 0.9, 0.2, 0.9, 0.85])
        monkeypatch.setattr(
            "repro.fl.server.test_accuracy",
            lambda model, test_set: next(scripted),
        )
        model, clients, dataset = make_world()
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        watchdog = DivergenceWatchdog(collapse_drop=0.3, warmup_rounds=1)
        server = FederatedServer(
            model, clients, dataset, telemetry=hub, watchdog=watchdog
        )
        server.train(2)  # accuracies 0.8 (warmup), 0.9
        after_round_two = model.flat_parameters()

        metrics = server.run_round(2)  # evaluates to 0.2 -> rollback
        hub.close()
        assert metrics.diverged
        assert "collapsed" in metrics.divergence_reason
        # parameters rolled back; re-evaluation recorded the survivor (0.9)
        np.testing.assert_array_equal(model.flat_parameters(), after_round_two)
        assert metrics.test_acc == 0.9
        rollbacks = [e for e in ring.events if e["name"] == "watchdog.rollback"]
        assert len(rollbacks) == 1
        assert rollbacks[0]["attrs"]["stage"] == "evaluation"

    def test_collapse_never_fires_during_warmup(self, monkeypatch):
        scripted = iter([0.9, 0.1, 0.1])
        monkeypatch.setattr(
            "repro.fl.server.test_accuracy",
            lambda model, test_set: next(scripted),
        )
        model, clients, dataset = make_world()
        server = FederatedServer(
            model,
            clients,
            dataset,
            watchdog=DivergenceWatchdog(collapse_drop=0.3, warmup_rounds=3),
        )
        history = server.train(3)
        assert history.diverged_rounds == []


class TestWatchdogPersistence:
    def test_state_survives_checkpoint_resume(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        model, clients, dataset = make_world()
        watchdog = DivergenceWatchdog(collapse_drop=0.3)
        server = FederatedServer(
            model, clients, dataset, watchdog=watchdog
        )
        server.train(2, checkpoint=manager)
        assert watchdog.best_accuracy is not None

        model2, clients2, dataset2 = make_world()
        fresh = DivergenceWatchdog(collapse_drop=0.3)
        server2 = FederatedServer(
            model2, clients2, dataset2, watchdog=fresh
        )
        server2.train(3, checkpoint=manager, resume=True)
        assert fresh.rounds_observed == 3
        assert fresh.best_accuracy >= watchdog.best_accuracy
