"""Tests for BatchNorm2d."""

import numpy as np
import pytest

from repro import nn
from repro.nn.gradcheck import check_layer_gradients


class TestBatchNorm2d:
    def test_training_output_normalized(self, rng):
        layer = nn.BatchNorm2d(3)
        x = rng.normal(5.0, 2.0, (8, 3, 4, 4))
        out = layer(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_affine_applied(self, rng):
        layer = nn.BatchNorm2d(2)
        layer.gamma.data[...] = [2.0, 3.0]
        layer.beta.data[...] = [1.0, -1.0]
        x = rng.normal(0.0, 1.0, (16, 2, 3, 3))
        out = layer(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), [1.0, -1.0], atol=1e-6)

    def test_running_stats_converge(self, rng):
        layer = nn.BatchNorm2d(1, momentum=0.5)
        for _ in range(20):
            layer(rng.normal(4.0, 1.0, (32, 1, 2, 2)))
        assert layer.running_mean[0] == pytest.approx(4.0, abs=0.3)
        assert layer.running_var[0] == pytest.approx(1.0, abs=0.3)

    def test_eval_uses_running_stats(self, rng):
        layer = nn.BatchNorm2d(1)
        layer.running_mean[...] = 10.0
        layer.running_var[...] = 4.0
        layer.eval()
        x = np.full((2, 1, 2, 2), 12.0)
        out = layer(x)
        np.testing.assert_allclose(out, (12.0 - 10.0) / 2.0, atol=1e-3)

    def test_eval_does_not_update_running_stats(self, rng):
        layer = nn.BatchNorm2d(2)
        layer.eval()
        before = layer.running_mean.copy()
        layer(rng.normal(9.0, 1.0, (4, 2, 3, 3)))
        np.testing.assert_array_equal(layer.running_mean, before)

    def test_training_gradients(self, rng):
        layer = nn.BatchNorm2d(2)
        x = rng.standard_normal((4, 2, 3, 3)) * 2.0 + 1.0
        errors = check_layer_gradients(layer, x, rng)
        assert max(errors.values()) < 1e-4

    def test_eval_gradients(self, rng):
        layer = nn.BatchNorm2d(2)
        layer.running_mean[...] = rng.normal(size=2)
        layer.running_var[...] = np.abs(rng.normal(size=2)) + 0.5
        layer.eval()
        errors = check_layer_gradients(layer, rng.standard_normal((3, 2, 3, 3)), rng)
        assert max(errors.values()) < 1e-5

    def test_shape_validation(self, rng):
        layer = nn.BatchNorm2d(3)
        with pytest.raises(ValueError, match="expected"):
            layer(rng.random((2, 4, 3, 3)))

    def test_parameters_registered(self):
        layer = nn.BatchNorm2d(5)
        names = [name for name, _ in layer.named_parameters()]
        assert "gamma" in names and "beta" in names

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(0)
        with pytest.raises(ValueError):
            nn.BatchNorm2d(3, momentum=0.0)
