"""Tests for the global dtype configuration."""

import numpy as np
import pytest

from repro import nn
from repro.nn.config import get_default_dtype, set_default_dtype


class TestDtypeConfig:
    def test_default_is_float32(self):
        assert get_default_dtype() == np.float32

    def test_parameters_follow_default(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        assert layer.weight.data.dtype == get_default_dtype()

    def test_switch_and_restore(self, rng):
        set_default_dtype(np.float64)
        try:
            layer = nn.Linear(3, 2, rng=rng)
            assert layer.weight.data.dtype == np.float64
        finally:
            set_default_dtype(np.float32)
        layer32 = nn.Linear(3, 2, rng=rng)
        assert layer32.weight.data.dtype == np.float32

    def test_rejects_other_dtypes(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)

    def test_forward_stays_in_default_dtype(self, tiny_cnn, rng):
        x = rng.random((2, 1, 8, 8)).astype(get_default_dtype())
        out = tiny_cnn(x)
        assert out.dtype == get_default_dtype()

    def test_dataset_casts_images(self, rng):
        from repro.data.dataset import Dataset

        ds = Dataset(rng.random((3, 1, 4, 4)).astype(np.float64), np.zeros(3, dtype=int))
        assert ds.images.dtype == get_default_dtype()
