"""Tests for repro.nn.functional: im2col/col2im, softmax, one-hot."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(28, 5, 1, 2) == 28

    def test_stride(self):
        assert F.conv_output_size(8, 2, 2, 0) == 4

    def test_kernel_too_large(self):
        with pytest.raises(ValueError, match="larger than padded input"):
            F.conv_output_size(3, 5, 1, 0)

    def test_non_tiling_window(self):
        with pytest.raises(ValueError, match="does not tile"):
            F.conv_output_size(7, 2, 2, 0)


class TestIm2col:
    def test_shape(self):
        images = np.arange(2 * 3 * 6 * 6, dtype=float).reshape(2, 3, 6, 6)
        cols = F.im2col(images, 3, 3, stride=1, padding=1)
        assert cols.shape == (2 * 6 * 6, 3 * 3 * 3)

    def test_identity_kernel_1x1(self):
        """1x1 windows with stride 1 are just a reshape."""
        images = np.arange(24, dtype=float).reshape(1, 2, 3, 4)
        cols = F.im2col(images, 1, 1)
        expected = images.transpose(0, 2, 3, 1).reshape(-1, 2)
        np.testing.assert_array_equal(cols, expected)

    def test_known_window_values(self):
        images = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols = F.im2col(images, 2, 2, stride=2)
        # windows: top-left, top-right, bottom-left, bottom-right
        np.testing.assert_array_equal(cols[0], [0, 1, 4, 5])
        np.testing.assert_array_equal(cols[1], [2, 3, 6, 7])
        np.testing.assert_array_equal(cols[2], [8, 9, 12, 13])
        np.testing.assert_array_equal(cols[3], [10, 11, 14, 15])

    def test_padding_adds_zeros(self):
        images = np.ones((1, 1, 2, 2))
        cols = F.im2col(images, 3, 3, stride=1, padding=1)
        # the center window covers all four ones
        assert cols.sum() == pytest.approx(4 * 4)  # each pixel in 4 windows


class TestCol2imAdjoint:
    """col2im must be the exact adjoint of im2col:
    <im2col(x), y> == <x, col2im(y)> for all x, y."""

    @given(
        n=st.integers(1, 3),
        c=st.integers(1, 3),
        size=st.sampled_from([4, 6, 8]),
        kernel=st.sampled_from([1, 2, 3]),
        padding=st.integers(0, 1),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_adjoint_property(self, n, c, size, kernel, padding, seed):
        stride = 1
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, c, size, size))
        cols = F.im2col(x, kernel, kernel, stride, padding)
        y = rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * F.col2im(y, x.shape, kernel, kernel, stride, padding)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_col2im_counts_overlaps(self):
        """Fold of all-ones columns counts window coverage per pixel."""
        shape = (1, 1, 3, 3)
        cols = np.ones((9, 4))  # 2x2 kernel, stride 1, padding released below
        out = F.col2im(
            np.ones((4, 4)), shape, 2, 2, stride=1, padding=0
        )
        # center pixel covered by all 4 windows; corners by 1
        assert out[0, 0, 1, 1] == 4
        assert out[0, 0, 0, 0] == 1


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        logits = rng.standard_normal((5, 7))
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_shift_invariance(self, rng):
        logits = rng.standard_normal((4, 3))
        np.testing.assert_allclose(F.softmax(logits), F.softmax(logits + 100.0))

    def test_extreme_values_stable(self):
        logits = np.array([[1000.0, 0.0], [-1000.0, 0.0]])
        probs = F.softmax(logits)
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self, rng):
        logits = rng.standard_normal((4, 6))
        np.testing.assert_allclose(
            np.exp(F.log_softmax(logits)), F.softmax(logits), atol=1e-12
        )


class TestOneHot:
    def test_basic(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            F.one_hot(np.array([3]), 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_empty(self):
        assert F.one_hot(np.zeros(0, dtype=int), 4).shape == (0, 4)

    def test_defaults_to_model_dtype(self):
        from repro.nn.config import get_default_dtype

        assert F.one_hot(np.array([1]), 3).dtype == get_default_dtype()

    def test_explicit_dtype_wins(self):
        encoded = F.one_hot(np.array([0, 1]), 2, dtype=np.float64)
        assert encoded.dtype == np.float64
        np.testing.assert_array_equal(encoded, [[1.0, 0.0], [0.0, 1.0]])

    def test_honors_configured_default_dtype(self):
        from repro.nn.config import get_default_dtype, set_default_dtype

        previous = get_default_dtype()
        try:
            set_default_dtype(np.float64)
            assert F.one_hot(np.array([0]), 2).dtype == np.float64
        finally:
            set_default_dtype(previous)


class TestConvPlanCache:
    def setup_method(self):
        F.clear_conv_plan_cache()

    def teardown_method(self):
        F.clear_conv_plan_cache()

    def test_same_geometry_reuses_the_plan(self):
        first = F.conv_plan(8, 8, 3, 3, stride=1, padding=1)
        assert F.conv_plan(8, 8, 3, 3, stride=1, padding=1) is first

    def test_distinct_geometries_get_distinct_plans(self):
        a = F.conv_plan(8, 8, 3, 3)
        b = F.conv_plan(8, 8, 3, 3, padding=1)
        c = F.conv_plan(9, 9, 3, 3, stride=2)
        assert len({id(a), id(b), id(c)}) == 3
        assert (a.out_h, b.out_h, c.out_h) == (6, 8, 4)

    def test_invalid_geometry_never_cached(self):
        for _ in range(2):  # identical failure on every call
            with pytest.raises(ValueError):
                F.conv_plan(2, 2, 5, 5)
        assert not F._PLAN_CACHE

    def test_disjoint_windows_skip_scatter(self):
        # stride >= kernel: col2im windows never overlap, no scatter loop
        assert F.conv_plan(8, 8, 2, 2, stride=2).scatter == ()
        assert len(F.conv_plan(8, 8, 3, 3, stride=1).scatter) == 9

    def test_cache_is_bounded(self):
        for size in range(F._PLAN_CACHE_MAX + 10):
            F.conv_plan(size + 3, size + 3, 3, 3)
        assert len(F._PLAN_CACHE) <= F._PLAN_CACHE_MAX

    def test_clear_resets(self):
        F.conv_plan(8, 8, 3, 3)
        assert F._PLAN_CACHE
        F.clear_conv_plan_cache()
        assert not F._PLAN_CACHE

    def test_cached_roundtrip_matches_fresh(self):
        """im2col/col2im through a warm cache equals a cold cache."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 9, 9))
        cold_cols = F.im2col(x, 3, 3, stride=2, padding=1)
        cold_back = F.col2im(
            cold_cols, x.shape, 3, 3, stride=2, padding=1
        )
        warm_cols = F.im2col(x, 3, 3, stride=2, padding=1)
        warm_back = F.col2im(
            warm_cols, x.shape, 3, 3, stride=2, padding=1
        )
        np.testing.assert_array_equal(warm_cols, cold_cols)
        np.testing.assert_array_equal(warm_back, cold_back)


class TestActivations:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(F.relu(x), [0.0, 0.0, 2.0])
        np.testing.assert_array_equal(F.relu_grad(x), [0.0, 0.0, 1.0])

    def test_sigmoid_stable_extremes(self):
        out = F.sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.standard_normal((8, 4))
        labels = rng.integers(0, 4, 8)
        probs = F.softmax(logits)
        manual = -np.log(probs[np.arange(8), labels]).mean()
        assert F.stable_cross_entropy(logits, labels) == pytest.approx(manual)


def reference_im2col(images, kernel_h, kernel_w, stride, padding):
    """Straightforward per-window loop (the pre-vectorization algorithm)."""
    n, c, h, w = images.shape
    out_h = (h + 2 * padding - kernel_h) // stride + 1
    out_w = (w + 2 * padding - kernel_w) // stride + 1
    padded = np.pad(
        images, ((0, 0), (0, 0), (padding, padding), (padding, padding))
    )
    rows = []
    for i in range(n):
        for y in range(out_h):
            for x in range(out_w):
                patch = padded[
                    i,
                    :,
                    y * stride : y * stride + kernel_h,
                    x * stride : x * stride + kernel_w,
                ]
                rows.append(patch.reshape(-1))
    return np.stack(rows)


def reference_col2im(cols, image_shape, kernel_h, kernel_w, stride, padding):
    """Per-window accumulation loop (the pre-vectorization algorithm)."""
    n, c, h, w = image_shape
    out_h = (h + 2 * padding - kernel_h) // stride + 1
    out_w = (w + 2 * padding - kernel_w) // stride + 1
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    windows = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w)
    for i in range(n):
        for y in range(out_h):
            for x in range(out_w):
                padded[
                    i,
                    :,
                    y * stride : y * stride + kernel_h,
                    x * stride : x * stride + kernel_w,
                ] += windows[i, y, x]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class TestVectorizedLoopEquivalence:
    """The strided-view im2col/col2im must reproduce the naive loops
    exactly, across overlapping, disjoint and gapped window geometries.

    Integer-valued inputs make the comparison exact: every accumulation
    order sums the same integers, so even the overlapping col2im paths
    must agree bit for bit.
    """

    GEOMETRIES = [
        (kernel, stride, padding)
        for kernel in (1, 2, 3, 5)
        for stride in (1, 2, 3)
        for padding in (0, 1, 2)
    ]

    @staticmethod
    def _input_size(kernel, stride, padding):
        """A spatial size the window tiles with four output positions."""
        return kernel + 3 * stride - 2 * padding

    @pytest.mark.parametrize("kernel,stride,padding", GEOMETRIES)
    def test_im2col_matches_loop(self, kernel, stride, padding):
        size = self._input_size(kernel, stride, padding)
        if size < 1:
            pytest.skip("window does not fit this geometry")
        rng = np.random.default_rng(kernel * 100 + stride * 10 + padding)
        images = rng.integers(-8, 8, size=(2, 3, size, size)).astype(np.float64)
        fast = F.im2col(images, kernel, kernel, stride, padding)
        slow = reference_im2col(images, kernel, kernel, stride, padding)
        np.testing.assert_array_equal(fast, slow)

    @pytest.mark.parametrize("kernel,stride,padding", GEOMETRIES)
    def test_col2im_matches_loop(self, kernel, stride, padding):
        size = self._input_size(kernel, stride, padding)
        if size < 1:
            pytest.skip("window does not fit this geometry")
        out = 4  # by construction of _input_size
        rng = np.random.default_rng(kernel * 100 + stride * 10 + padding)
        cols = rng.integers(-8, 8, size=(2 * out * out, 3 * kernel * kernel))
        cols = cols.astype(np.float64)
        shape = (2, 3, size, size)
        fast = F.col2im(cols, shape, kernel, kernel, stride, padding)
        slow = reference_col2im(cols, shape, kernel, kernel, stride, padding)
        np.testing.assert_array_equal(fast, slow)

    def test_rectangular_kernel(self):
        rng = np.random.default_rng(0)
        images = rng.integers(-8, 8, size=(1, 2, 7, 9)).astype(np.float64)
        fast = F.im2col(images, 3, 2, stride=1, padding=1)
        slow = reference_im2col(images, 3, 2, stride=1, padding=1)
        np.testing.assert_array_equal(fast, slow)
        cols = rng.integers(-8, 8, size=fast.shape).astype(np.float64)
        np.testing.assert_array_equal(
            F.col2im(cols, images.shape, 3, 2, 1, 1),
            reference_col2im(cols, images.shape, 3, 2, 1, 1),
        )
