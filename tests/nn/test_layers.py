"""Tests for every layer: shapes, gradients, masks, error handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.gradcheck import check_layer_gradients

GRAD_TOL = 1e-5


class TestConv2d:
    def test_output_shape(self, rng):
        layer = nn.Conv2d(3, 8, kernel_size=3, padding=1, rng=rng)
        out = layer(rng.random((2, 3, 10, 10)))
        assert out.shape == (2, 8, 10, 10)

    def test_stride_shape(self, rng):
        layer = nn.Conv2d(1, 2, kernel_size=2, stride=2, rng=rng)
        out = layer(rng.random((1, 1, 8, 8)))
        assert out.shape == (1, 2, 4, 4)

    def test_wrong_channels_raises(self, rng):
        layer = nn.Conv2d(3, 4, kernel_size=3, rng=rng)
        with pytest.raises(ValueError, match="input channels"):
            layer(rng.random((1, 2, 6, 6)))

    def test_backward_before_forward_raises(self, rng):
        layer = nn.Conv2d(1, 1, kernel_size=3, rng=rng)
        with pytest.raises(RuntimeError, match="before forward"):
            layer.backward(np.zeros((1, 1, 4, 4)))

    def test_gradients(self, rng):
        layer = nn.Conv2d(2, 3, kernel_size=3, padding=1, stride=1, rng=rng)
        errors = check_layer_gradients(layer, rng.standard_normal((2, 2, 5, 5)), rng)
        assert max(errors.values()) < GRAD_TOL

    def test_gradients_with_stride(self, rng):
        layer = nn.Conv2d(1, 2, kernel_size=2, stride=2, rng=rng)
        errors = check_layer_gradients(layer, rng.standard_normal((2, 1, 6, 6)), rng)
        assert max(errors.values()) < GRAD_TOL

    def test_known_convolution_value(self):
        layer = nn.Conv2d(1, 1, kernel_size=2)
        layer.weight.data[...] = 1.0
        layer.bias.data[...] = 0.5
        out = layer(np.arange(9, dtype=float).reshape(1, 1, 3, 3))
        # top-left window: 0+1+3+4 = 8, plus bias
        assert out[0, 0, 0, 0] == pytest.approx(8.5)

    def test_masked_channel_outputs_zero(self, rng):
        layer = nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=rng)
        layer.out_mask[2] = False
        out = layer(rng.random((3, 1, 6, 6)))
        assert (out[:, 2] == 0).all()
        assert (out[:, 0] != 0).any()

    def test_masked_channel_gets_no_gradient(self, rng):
        layer = nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=rng)
        layer.out_mask[1] = False
        out = layer(rng.random((2, 1, 6, 6)))
        layer.backward(np.ones_like(out))
        assert (layer.weight.grad[1] == 0).all()
        assert layer.bias.grad[1] == 0
        assert (layer.weight.grad[0] != 0).any()

    def test_apply_mask_zeroes_parameters(self, rng):
        layer = nn.Conv2d(1, 4, kernel_size=3, rng=rng)
        layer.out_mask[3] = False
        layer.apply_mask()
        assert (layer.weight.data[3] == 0).all()
        assert layer.bias.data[3] == 0
        assert (layer.weight.data[0] != 0).any()


class TestLinear:
    def test_output_shape(self, rng):
        layer = nn.Linear(10, 4, rng=rng)
        assert layer(rng.random((3, 10))).shape == (3, 4)

    def test_wrong_features_raises(self, rng):
        layer = nn.Linear(10, 4, rng=rng)
        with pytest.raises(ValueError, match="expected input"):
            layer(rng.random((3, 9)))

    def test_gradients(self, rng):
        layer = nn.Linear(7, 4, rng=rng)
        errors = check_layer_gradients(layer, rng.standard_normal((3, 7)), rng)
        assert max(errors.values()) < GRAD_TOL

    def test_known_value(self):
        layer = nn.Linear(2, 1)
        layer.weight.data[...] = [[2.0, 3.0]]
        layer.bias.data[...] = [1.0]
        out = layer(np.array([[1.0, 1.0]]))
        assert out[0, 0] == pytest.approx(6.0)

    def test_mask_silences_feature(self, rng):
        layer = nn.Linear(5, 3, rng=rng)
        layer.out_mask[1] = False
        out = layer(rng.random((4, 5)))
        assert (out[:, 1] == 0).all()
        layer.backward(np.ones_like(out))
        assert (layer.weight.grad[1] == 0).all()


class TestActivationsAndPooling:
    @pytest.mark.parametrize("layer_factory,shape", [
        (lambda: nn.ReLU(), (3, 2, 4, 4)),
        (lambda: nn.Tanh(), (3, 5)),
        (lambda: nn.MaxPool2d(2), (2, 3, 6, 6)),
        (lambda: nn.AvgPool2d(2), (2, 3, 6, 6)),
        (lambda: nn.Flatten(), (2, 3, 4, 4)),
    ])
    def test_gradients(self, layer_factory, shape, rng):
        layer = layer_factory()
        # offset away from ReLU kink / pool ties for clean finite differences
        x = rng.standard_normal(shape) * 2.0 + 0.1
        errors = check_layer_gradients(layer, x, rng)
        assert max(errors.values()) < GRAD_TOL

    def test_maxpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = nn.MaxPool2d(2)(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = nn.AvgPool2d(2)(x)
        np.testing.assert_array_equal(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_maxpool_routes_gradient_to_argmax(self):
        x = np.arange(4, dtype=float).reshape(1, 1, 2, 2)
        pool = nn.MaxPool2d(2)
        pool(x)
        grad = pool.backward(np.ones((1, 1, 1, 1)))
        np.testing.assert_array_equal(grad[0, 0], [[0, 0], [0, 1]])

    def test_flatten_roundtrip(self, rng):
        layer = nn.Flatten()
        x = rng.random((2, 3, 4, 5))
        out = layer(x)
        assert out.shape == (2, 60)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = nn.Dropout(0.5, rng=rng)
        layer.training = False
        x = rng.random((4, 10))
        np.testing.assert_array_equal(layer(x), x)

    def test_train_mode_zeroes_and_scales(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100))
        out = layer(x)
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted dropout scaling

    def test_backward_uses_same_mask(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((10, 10))
        out = layer(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestSequential:
    def test_forward_backward_chain(self, tiny_cnn, rng):
        x = rng.random((2, 1, 8, 8))
        out = tiny_cnn(x)
        assert out.shape == (2, 5)
        grad = tiny_cnn.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_indexing_and_len(self, tiny_cnn):
        assert len(tiny_cnn) == 8
        assert isinstance(tiny_cnn[0], nn.Conv2d)

    def test_conv_layers_and_last_conv(self, tiny_cnn):
        convs = tiny_cnn.conv_layers()
        assert len(convs) == 2
        assert tiny_cnn.last_conv() is convs[-1]

    def test_last_conv_raises_without_convs(self, rng):
        model = nn.Sequential(nn.Flatten(), nn.Linear(4, 2, rng=rng))
        with pytest.raises(ValueError, match="no convolutional"):
            model.last_conv()

    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_whole_model_gradient(self, seed):
        """End-to-end gradient of a small model against finite differences."""
        rng = np.random.default_rng(seed)
        model = nn.Sequential(
            nn.Conv2d(1, 2, kernel_size=3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Flatten(),
            nn.Linear(2 * 4 * 4, 3, rng=rng),
        )
        errors = check_layer_gradients(
            model, rng.standard_normal((2, 1, 4, 4)) + 0.05, rng
        )
        assert max(errors.values()) < GRAD_TOL


class TestConv2dWeightCache:
    """The masked ``weight_2d`` matrix is cached between passes; every
    mutation route must invalidate it so forward never uses stale
    weights."""

    @staticmethod
    def _expected(layer, x):
        """Ground-truth forward from the layer's current weights/mask."""
        from repro.nn import functional as F

        k = layer.kernel_size
        n = x.shape[0]
        out_h = F.conv_output_size(x.shape[2], k, layer.stride, layer.padding)
        out_w = F.conv_output_size(x.shape[3], k, layer.stride, layer.padding)
        cols = F.im2col(x, k, k, layer.stride, layer.padding)
        weight_2d = (
            layer.weight.data * layer.out_mask[:, None, None, None]
        ).reshape(layer.out_channels, -1)
        out = cols @ weight_2d.T + layer.bias.data * layer.out_mask
        return out.reshape(n, out_h, out_w, layer.out_channels).transpose(
            0, 3, 1, 2
        )

    @pytest.fixture
    def layer_and_input(self, rng):
        layer = nn.Conv2d(2, 4, kernel_size=3, padding=1, rng=rng)
        return layer, rng.standard_normal((2, 2, 6, 6))

    def test_cache_reused_between_passes(self, layer_and_input):
        layer, x = layer_and_input
        layer(x)
        first = layer._weight_2d
        layer(x)
        assert layer._weight_2d is first  # no recompute without mutation

    def test_optimizer_step_invalidates(self, layer_and_input, rng):
        layer, x = layer_and_input
        out = layer(x)
        layer.backward(rng.standard_normal(out.shape))
        nn.SGD(layer.parameters(), lr=0.1).step()
        np.testing.assert_array_equal(layer(x), self._expected(layer, x))

    def test_apply_mask_invalidates(self, layer_and_input):
        layer, x = layer_and_input
        layer(x)
        layer.out_mask[1] = False
        layer.apply_mask()
        out = layer(x)
        np.testing.assert_array_equal(out, self._expected(layer, x))
        assert (out[:, 1] == 0).all()

    def test_mask_mutation_alone_invalidates(self, layer_and_input):
        layer, x = layer_and_input
        layer(x)
        layer.out_mask[2] = False  # no apply_mask: mask-bytes key catches it
        out = layer(x)
        np.testing.assert_array_equal(out, self._expected(layer, x))
        assert (out[:, 2] == 0).all()

    def test_load_flat_parameters_invalidates(self, layer_and_input, rng):
        layer, x = layer_and_input
        layer(x)
        layer.load_flat_parameters(rng.standard_normal(layer.num_parameters()))
        np.testing.assert_array_equal(layer(x), self._expected(layer, x))

    def test_copy_invalidates(self, layer_and_input, rng):
        layer, x = layer_and_input
        layer(x)
        layer.weight.copy_(rng.standard_normal(layer.weight.shape))
        np.testing.assert_array_equal(layer(x), self._expected(layer, x))

    def test_data_rebind_invalidates(self, layer_and_input, rng):
        layer, x = layer_and_input
        layer(x)
        layer.weight.data = rng.standard_normal(layer.weight.shape)
        np.testing.assert_array_equal(layer(x), self._expected(layer, x))

    def test_deepcopy_clone_is_independent(self, layer_and_input, rng):
        import copy

        layer, x = layer_and_input
        layer(x)
        clone = copy.deepcopy(layer)
        layer.weight.data = rng.standard_normal(layer.weight.shape)
        layer(x)
        np.testing.assert_array_equal(clone(x), self._expected(clone, x))

    def test_gradients_overlapping_stride(self, rng):
        """stride < kernel exercises col2im's accumulating backward path."""
        layer = nn.Conv2d(2, 3, kernel_size=3, stride=2, padding=1, rng=rng)
        errors = check_layer_gradients(layer, rng.standard_normal((2, 2, 7, 7)), rng)
        assert max(errors.values()) < GRAD_TOL

    def test_gradients_with_pruned_channels(self, rng):
        layer = nn.Conv2d(2, 4, kernel_size=3, padding=1, rng=rng)
        layer.out_mask[0] = False
        errors = check_layer_gradients(layer, rng.standard_normal((2, 2, 5, 5)), rng)
        assert max(errors.values()) < GRAD_TOL
