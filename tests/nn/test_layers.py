"""Tests for every layer: shapes, gradients, masks, error handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.gradcheck import check_layer_gradients

GRAD_TOL = 1e-5


class TestConv2d:
    def test_output_shape(self, rng):
        layer = nn.Conv2d(3, 8, kernel_size=3, padding=1, rng=rng)
        out = layer(rng.random((2, 3, 10, 10)))
        assert out.shape == (2, 8, 10, 10)

    def test_stride_shape(self, rng):
        layer = nn.Conv2d(1, 2, kernel_size=2, stride=2, rng=rng)
        out = layer(rng.random((1, 1, 8, 8)))
        assert out.shape == (1, 2, 4, 4)

    def test_wrong_channels_raises(self, rng):
        layer = nn.Conv2d(3, 4, kernel_size=3, rng=rng)
        with pytest.raises(ValueError, match="input channels"):
            layer(rng.random((1, 2, 6, 6)))

    def test_backward_before_forward_raises(self, rng):
        layer = nn.Conv2d(1, 1, kernel_size=3, rng=rng)
        with pytest.raises(RuntimeError, match="before forward"):
            layer.backward(np.zeros((1, 1, 4, 4)))

    def test_gradients(self, rng):
        layer = nn.Conv2d(2, 3, kernel_size=3, padding=1, stride=1, rng=rng)
        errors = check_layer_gradients(layer, rng.standard_normal((2, 2, 5, 5)), rng)
        assert max(errors.values()) < GRAD_TOL

    def test_gradients_with_stride(self, rng):
        layer = nn.Conv2d(1, 2, kernel_size=2, stride=2, rng=rng)
        errors = check_layer_gradients(layer, rng.standard_normal((2, 1, 6, 6)), rng)
        assert max(errors.values()) < GRAD_TOL

    def test_known_convolution_value(self):
        layer = nn.Conv2d(1, 1, kernel_size=2)
        layer.weight.data[...] = 1.0
        layer.bias.data[...] = 0.5
        out = layer(np.arange(9, dtype=float).reshape(1, 1, 3, 3))
        # top-left window: 0+1+3+4 = 8, plus bias
        assert out[0, 0, 0, 0] == pytest.approx(8.5)

    def test_masked_channel_outputs_zero(self, rng):
        layer = nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=rng)
        layer.out_mask[2] = False
        out = layer(rng.random((3, 1, 6, 6)))
        assert (out[:, 2] == 0).all()
        assert (out[:, 0] != 0).any()

    def test_masked_channel_gets_no_gradient(self, rng):
        layer = nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=rng)
        layer.out_mask[1] = False
        out = layer(rng.random((2, 1, 6, 6)))
        layer.backward(np.ones_like(out))
        assert (layer.weight.grad[1] == 0).all()
        assert layer.bias.grad[1] == 0
        assert (layer.weight.grad[0] != 0).any()

    def test_apply_mask_zeroes_parameters(self, rng):
        layer = nn.Conv2d(1, 4, kernel_size=3, rng=rng)
        layer.out_mask[3] = False
        layer.apply_mask()
        assert (layer.weight.data[3] == 0).all()
        assert layer.bias.data[3] == 0
        assert (layer.weight.data[0] != 0).any()


class TestLinear:
    def test_output_shape(self, rng):
        layer = nn.Linear(10, 4, rng=rng)
        assert layer(rng.random((3, 10))).shape == (3, 4)

    def test_wrong_features_raises(self, rng):
        layer = nn.Linear(10, 4, rng=rng)
        with pytest.raises(ValueError, match="expected input"):
            layer(rng.random((3, 9)))

    def test_gradients(self, rng):
        layer = nn.Linear(7, 4, rng=rng)
        errors = check_layer_gradients(layer, rng.standard_normal((3, 7)), rng)
        assert max(errors.values()) < GRAD_TOL

    def test_known_value(self):
        layer = nn.Linear(2, 1)
        layer.weight.data[...] = [[2.0, 3.0]]
        layer.bias.data[...] = [1.0]
        out = layer(np.array([[1.0, 1.0]]))
        assert out[0, 0] == pytest.approx(6.0)

    def test_mask_silences_feature(self, rng):
        layer = nn.Linear(5, 3, rng=rng)
        layer.out_mask[1] = False
        out = layer(rng.random((4, 5)))
        assert (out[:, 1] == 0).all()
        layer.backward(np.ones_like(out))
        assert (layer.weight.grad[1] == 0).all()


class TestActivationsAndPooling:
    @pytest.mark.parametrize("layer_factory,shape", [
        (lambda: nn.ReLU(), (3, 2, 4, 4)),
        (lambda: nn.Tanh(), (3, 5)),
        (lambda: nn.MaxPool2d(2), (2, 3, 6, 6)),
        (lambda: nn.AvgPool2d(2), (2, 3, 6, 6)),
        (lambda: nn.Flatten(), (2, 3, 4, 4)),
    ])
    def test_gradients(self, layer_factory, shape, rng):
        layer = layer_factory()
        # offset away from ReLU kink / pool ties for clean finite differences
        x = rng.standard_normal(shape) * 2.0 + 0.1
        errors = check_layer_gradients(layer, x, rng)
        assert max(errors.values()) < GRAD_TOL

    def test_maxpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = nn.MaxPool2d(2)(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = nn.AvgPool2d(2)(x)
        np.testing.assert_array_equal(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_maxpool_routes_gradient_to_argmax(self):
        x = np.arange(4, dtype=float).reshape(1, 1, 2, 2)
        pool = nn.MaxPool2d(2)
        pool(x)
        grad = pool.backward(np.ones((1, 1, 1, 1)))
        np.testing.assert_array_equal(grad[0, 0], [[0, 0], [0, 1]])

    def test_flatten_roundtrip(self, rng):
        layer = nn.Flatten()
        x = rng.random((2, 3, 4, 5))
        out = layer(x)
        assert out.shape == (2, 60)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = nn.Dropout(0.5, rng=rng)
        layer.training = False
        x = rng.random((4, 10))
        np.testing.assert_array_equal(layer(x), x)

    def test_train_mode_zeroes_and_scales(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100))
        out = layer(x)
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted dropout scaling

    def test_backward_uses_same_mask(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((10, 10))
        out = layer(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestSequential:
    def test_forward_backward_chain(self, tiny_cnn, rng):
        x = rng.random((2, 1, 8, 8))
        out = tiny_cnn(x)
        assert out.shape == (2, 5)
        grad = tiny_cnn.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_indexing_and_len(self, tiny_cnn):
        assert len(tiny_cnn) == 8
        assert isinstance(tiny_cnn[0], nn.Conv2d)

    def test_conv_layers_and_last_conv(self, tiny_cnn):
        convs = tiny_cnn.conv_layers()
        assert len(convs) == 2
        assert tiny_cnn.last_conv() is convs[-1]

    def test_last_conv_raises_without_convs(self, rng):
        model = nn.Sequential(nn.Flatten(), nn.Linear(4, 2, rng=rng))
        with pytest.raises(ValueError, match="no convolutional"):
            model.last_conv()

    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_whole_model_gradient(self, seed):
        """End-to-end gradient of a small model against finite differences."""
        rng = np.random.default_rng(seed)
        model = nn.Sequential(
            nn.Conv2d(1, 2, kernel_size=3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Flatten(),
            nn.Linear(2 * 4 * 4, 3, rng=rng),
        )
        errors = check_layer_gradients(
            model, rng.standard_normal((2, 1, 4, 4)) + 0.05, rng
        )
        assert max(errors.values()) < GRAD_TOL
