"""Tests for loss functions and the per-layer L2 penalty."""

import numpy as np
import pytest

from repro import nn
from repro.nn.gradcheck import max_relative_error, numerical_gradient


class TestCrossEntropyLoss:
    def test_uniform_logits_loss_is_log_classes(self):
        loss_fn = nn.CrossEntropyLoss()
        logits = np.zeros((4, 10))
        labels = np.array([0, 3, 5, 9])
        assert loss_fn(logits, labels) == pytest.approx(np.log(10))

    def test_perfect_prediction_loss_near_zero(self):
        loss_fn = nn.CrossEntropyLoss()
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        assert loss_fn(logits, np.array([1, 2])) == pytest.approx(0.0, abs=1e-8)

    def test_gradient_matches_numeric(self, rng):
        loss_fn = nn.CrossEntropyLoss()
        logits = rng.standard_normal((5, 4))
        labels = rng.integers(0, 4, 5)

        loss_fn(logits, labels)
        analytic = loss_fn.backward()
        numeric = numerical_gradient(lambda x: loss_fn.forward(x, labels), logits.copy())
        assert max_relative_error(analytic, numeric) < 1e-6

    def test_gradient_rows_sum_to_zero(self, rng):
        """softmax-CE gradient rows sum to zero (prob simplex tangent)."""
        loss_fn = nn.CrossEntropyLoss()
        logits = rng.standard_normal((6, 5))
        loss_fn(logits, rng.integers(0, 5, 6))
        np.testing.assert_allclose(loss_fn.backward().sum(axis=1), 0.0, atol=1e-12)

    def test_shape_validation(self):
        loss_fn = nn.CrossEntropyLoss()
        with pytest.raises(ValueError, match="2-D"):
            loss_fn(np.zeros(3), np.zeros(3, dtype=int))
        with pytest.raises(ValueError, match="does not match batch"):
            loss_fn(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            nn.CrossEntropyLoss().backward()


class TestLayerL2Penalty:
    def test_value(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        penalty = nn.LayerL2Penalty([layer], coefficient=0.5)
        expected = 0.5 * (layer.weight.data**2).sum()
        assert penalty.value() == pytest.approx(expected)

    def test_gradient_accumulation(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        penalty = nn.LayerL2Penalty([layer], coefficient=0.1)
        layer.zero_grad()
        penalty.add_gradients()
        np.testing.assert_allclose(layer.weight.grad, 0.2 * layer.weight.data)

    def test_bias_exempt(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        layer.bias.data[...] = 5.0
        penalty = nn.LayerL2Penalty([layer], coefficient=1.0)
        layer.zero_grad()
        penalty.add_gradients()
        np.testing.assert_array_equal(layer.bias.grad, 0.0)

    def test_loss_integration_gradcheck(self, rng):
        """CE + L2 penalty end-to-end gradient on the penalized layer."""
        layer = nn.Linear(4, 3, rng=rng)
        # finite differences need double precision
        layer.weight.data = layer.weight.data.astype(np.float64)
        layer.weight.grad = layer.weight.grad.astype(np.float64)
        layer.bias.data = layer.bias.data.astype(np.float64)
        layer.bias.grad = layer.bias.grad.astype(np.float64)
        penalty = nn.LayerL2Penalty([layer], coefficient=0.05)
        loss_fn = nn.CrossEntropyLoss(l2_penalty=penalty)
        x = rng.standard_normal((5, 4))
        labels = rng.integers(0, 3, 5)

        layer.zero_grad()
        loss_fn(layer(x), labels)
        layer.backward(loss_fn.backward())
        analytic = layer.weight.grad.copy()

        def loss_of_weights(_):
            return loss_fn.forward(layer.forward(x), labels)

        numeric = numerical_gradient(loss_of_weights, layer.weight.data)
        assert max_relative_error(analytic, numeric) < 1e-5

    def test_rejects_negative_coefficient(self, rng):
        with pytest.raises(ValueError):
            nn.LayerL2Penalty([nn.Linear(2, 2, rng=rng)], coefficient=-1.0)

    def test_rejects_non_weight_layer(self):
        with pytest.raises(TypeError):
            nn.LayerL2Penalty([nn.ReLU()], coefficient=0.1)


class TestMSELoss:
    def test_zero_for_equal(self, rng):
        loss_fn = nn.MSELoss()
        x = rng.random((3, 4))
        assert loss_fn(x, x.copy()) == 0.0

    def test_known_value(self):
        loss_fn = nn.MSELoss()
        assert loss_fn(np.array([1.0, 3.0]), np.array([0.0, 0.0])) == pytest.approx(5.0)

    def test_gradient_matches_numeric(self, rng):
        loss_fn = nn.MSELoss()
        pred = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 3))
        loss_fn(pred, target)
        analytic = loss_fn.backward()
        numeric = numerical_gradient(lambda x: loss_fn.forward(x, target), pred.copy())
        assert max_relative_error(analytic, numeric) < 1e-6

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            nn.MSELoss()(np.zeros((2, 3)), np.zeros((3, 2)))
