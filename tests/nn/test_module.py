"""Tests for Module/Parameter plumbing: traversal, state, flat vectors."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter


class TestParameter:
    def test_grad_initialized_zero(self):
        param = Parameter(np.ones((2, 3)))
        assert param.grad.shape == (2, 3)
        assert (param.grad == 0).all()

    def test_copy_checks_shape(self):
        param = Parameter(np.zeros((2, 2)), name="w")
        with pytest.raises(ValueError, match="shape mismatch for w"):
            param.copy_(np.zeros(3))

    def test_copy_is_inplace(self):
        param = Parameter(np.zeros(3))
        buffer = param.data
        param.copy_(np.ones(3))
        assert buffer is param.data
        np.testing.assert_array_equal(buffer, 1.0)


class TestModuleTraversal:
    def test_named_parameters_paths(self, tiny_cnn):
        names = [name for name, _ in tiny_cnn.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.0.bias" in names
        assert any("7" in n for n in names)  # final linear

    def test_parameters_count(self, tiny_cnn):
        # conv(1->4,3x3)+b, conv(4->6,3x3)+b, linear(24->5)+b
        expected = (4 * 1 * 9 + 4) + (6 * 4 * 9 + 6) + (5 * 24 + 5)
        assert tiny_cnn.num_parameters() == expected

    def test_modules_iterates_children(self, tiny_cnn):
        kinds = [type(m).__name__ for m in tiny_cnn.modules()]
        assert kinds.count("Conv2d") == 2
        assert "Sequential" in kinds

    def test_zero_grad_clears_all(self, tiny_cnn, rng):
        out = tiny_cnn(rng.random((2, 1, 8, 8)))
        tiny_cnn.backward(np.ones_like(out))
        assert any((p.grad != 0).any() for p in tiny_cnn.parameters())
        tiny_cnn.zero_grad()
        assert all((p.grad == 0).all() for p in tiny_cnn.parameters())

    def test_train_eval_modes_propagate(self, tiny_cnn):
        tiny_cnn.eval()
        assert all(not m.training for m in tiny_cnn.modules())
        tiny_cnn.train()
        assert all(m.training for m in tiny_cnn.modules())


class TestStateDict:
    def test_roundtrip(self, tiny_cnn, rng):
        state = tiny_cnn.state_dict()
        original = tiny_cnn(rng.random((1, 1, 8, 8)))
        for param in tiny_cnn.parameters():
            param.data += 1.0
        tiny_cnn.load_state_dict(state)
        restored = tiny_cnn(rng.random((1, 1, 8, 8)) * 0 + 0.5)
        # deterministic forward after restore
        again = tiny_cnn(np.full((1, 1, 8, 8), 0.5))
        np.testing.assert_array_equal(restored, again)

    def test_state_dict_values_are_copies(self, tiny_cnn):
        state = tiny_cnn.state_dict()
        key = next(iter(state))
        state[key] += 99.0
        assert not np.allclose(dict(tiny_cnn.named_parameters())[key].data, state[key])

    def test_strict_mismatch_raises(self, tiny_cnn):
        state = tiny_cnn.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError, match="missing"):
            tiny_cnn.load_state_dict(state)

    def test_unexpected_key_raises(self, tiny_cnn):
        state = tiny_cnn.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            tiny_cnn.load_state_dict(state)


class TestFlatParameters:
    def test_roundtrip_identity(self, tiny_cnn, rng):
        flat = tiny_cnn.flat_parameters()
        assert flat.shape == (tiny_cnn.num_parameters(),)
        x = rng.random((2, 1, 8, 8))
        before = tiny_cnn(x)
        tiny_cnn.load_flat_parameters(flat)
        np.testing.assert_array_equal(before, tiny_cnn(x))

    def test_load_changes_model(self, tiny_cnn, rng):
        x = rng.random((1, 1, 8, 8))
        before = tiny_cnn(x).copy()
        tiny_cnn.load_flat_parameters(np.zeros(tiny_cnn.num_parameters()))
        after = tiny_cnn(x)
        assert not np.allclose(before, after)
        np.testing.assert_array_equal(after, 0.0)  # all-zero net

    def test_wrong_length_raises(self, tiny_cnn):
        with pytest.raises(ValueError, match="flat vector"):
            tiny_cnn.load_flat_parameters(np.zeros(3))

    def test_delta_application(self, tiny_cnn):
        """w' = w + delta reproduces exactly through flat vectors."""
        flat = tiny_cnn.flat_parameters()
        delta = np.ones_like(flat) * 0.5
        tiny_cnn.load_flat_parameters(flat + delta)
        np.testing.assert_allclose(tiny_cnn.flat_parameters(), flat + delta)


class TestActivationRecording:
    def test_records_when_enabled(self, tiny_cnn, rng):
        conv = tiny_cnn[0]
        conv.record_activations(True)
        tiny_cnn(rng.random((2, 1, 8, 8)))
        assert conv.last_activation is not None
        assert conv.last_activation.shape == (2, 4, 8, 8)

    def test_disabled_clears(self, tiny_cnn, rng):
        conv = tiny_cnn[0]
        conv.record_activations(True)
        tiny_cnn(rng.random((1, 1, 8, 8)))
        conv.record_activations(False)
        assert conv.last_activation is None

    def test_no_recording_by_default(self, tiny_cnn, rng):
        tiny_cnn(rng.random((1, 1, 8, 8)))
        assert all(m.last_activation is None for m in tiny_cnn.modules())
