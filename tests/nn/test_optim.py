"""Tests for SGD and Adam optimizers."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam


def quadratic_params(start=5.0):
    """A single scalar parameter for minimizing f(x) = x^2."""
    return Parameter(np.array([start]))


def step_quadratic(param, optimizer, steps):
    for _ in range(steps):
        param.grad[...] = 2.0 * param.data  # d/dx x^2
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_plain_step(self):
        param = Parameter(np.array([1.0, 2.0]))
        optimizer = SGD([param], lr=0.1)
        param.grad[...] = [1.0, -1.0]
        optimizer.step()
        np.testing.assert_allclose(param.data, [0.9, 2.1])

    def test_converges_on_quadratic(self):
        param = quadratic_params()
        final = step_quadratic(param, SGD([param], lr=0.1), 100)
        assert abs(final) < 1e-6

    def test_momentum_accelerates(self):
        slow = quadratic_params()
        fast = quadratic_params()
        after_plain = abs(step_quadratic(slow, SGD([slow], lr=0.01), 20))
        after_momentum = abs(
            step_quadratic(fast, SGD([fast], lr=0.01, momentum=0.9), 20)
        )
        assert after_momentum < after_plain

    def test_weight_decay_shrinks_at_zero_grad(self):
        param = Parameter(np.array([4.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        param.grad[...] = 0.0
        optimizer.step()
        assert param.data[0] == pytest.approx(4.0 - 0.1 * 0.5 * 4.0)

    def test_zero_grad(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1)
        param.grad[...] = 3.0
        optimizer.zero_grad()
        assert param.grad[0] == 0.0

    @pytest.mark.parametrize(
        "kwargs", [{"lr": 0.0}, {"lr": -1.0}, {"lr": 0.1, "momentum": 1.0},
                   {"lr": 0.1, "weight_decay": -0.1}]
    )
    def test_invalid_hyperparameters(self, kwargs):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], **kwargs)

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = quadratic_params()
        final = step_quadratic(param, Adam([param], lr=0.3), 200)
        assert abs(final) < 1e-3

    def test_first_step_size_is_lr(self):
        """With bias correction, Adam's first step has magnitude ~lr."""
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param], lr=0.1)
        param.grad[...] = 42.0  # any positive gradient
        optimizer.step()
        assert param.data[0] == pytest.approx(1.0 - 0.1, abs=1e-6)

    def test_handles_sparse_gradient_scale(self):
        """Adam normalizes per-coordinate: tiny and huge grads step alike."""
        param = Parameter(np.array([1.0, 1.0]))
        optimizer = Adam([param], lr=0.1)
        param.grad[...] = [1e-3, 1e8]  # both far above Adam's eps floor
        optimizer.step()
        steps = 1.0 - param.data
        assert steps[0] == pytest.approx(steps[1], rel=1e-3)  # float32 default dtype

    @pytest.mark.parametrize("kwargs", [{"lr": 0.0}, {"lr": 0.1, "betas": (1.0, 0.9)}])
    def test_invalid_hyperparameters(self, kwargs):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], **kwargs)
