"""Hypothesis property tests over the NN framework's core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.gradcheck import check_layer_gradients

GRAD_TOL = 1e-5


class TestConvGradientProperties:
    @given(
        in_channels=st.integers(1, 3),
        out_channels=st.integers(1, 4),
        kernel=st.sampled_from([1, 3]),
        size=st.sampled_from([4, 6]),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=15, deadline=None)
    def test_conv_gradients_hold_for_any_shape(
        self, in_channels, out_channels, kernel, size, seed
    ):
        rng = np.random.default_rng(seed)
        layer = nn.Conv2d(
            in_channels, out_channels, kernel, padding=kernel // 2, rng=rng
        )
        x = rng.standard_normal((2, in_channels, size, size))
        errors = check_layer_gradients(layer, x, rng)
        assert max(errors.values()) < GRAD_TOL

    @given(
        in_features=st.integers(1, 12),
        out_features=st.integers(1, 8),
        batch=st.integers(1, 5),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=15, deadline=None)
    def test_linear_gradients_hold_for_any_shape(
        self, in_features, out_features, batch, seed
    ):
        rng = np.random.default_rng(seed)
        layer = nn.Linear(in_features, out_features, rng=rng)
        errors = check_layer_gradients(
            layer, rng.standard_normal((batch, in_features)), rng
        )
        assert max(errors.values()) < GRAD_TOL


class TestFlatParameterProperties:
    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_flat_roundtrip_identity(self, seed):
        rng = np.random.default_rng(seed)
        model = nn.Sequential(
            nn.Conv2d(1, 2, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Flatten(),
            nn.Linear(2 * 16, 3, rng=rng),
        )
        flat = model.flat_parameters()
        perturbed = flat + rng.standard_normal(flat.shape).astype(flat.dtype)
        model.load_flat_parameters(perturbed)
        np.testing.assert_allclose(
            model.flat_parameters(), perturbed, rtol=1e-6
        )


class TestMaskInvariants:
    @given(
        channels=st.integers(2, 8),
        seed=st.integers(0, 100),
        data=st.data(),
    )
    @settings(max_examples=15, deadline=None)
    def test_masked_channels_always_silent(self, channels, seed, data):
        """Whatever subset of channels is masked, their outputs are 0 and
        unmasked channels equal the unmasked computation."""
        rng = np.random.default_rng(seed)
        layer = nn.Conv2d(1, channels, 3, padding=1, rng=rng)
        x = rng.standard_normal((2, 1, 5, 5))
        reference = layer(x).copy()

        dead = data.draw(
            st.sets(st.integers(0, channels - 1), min_size=1, max_size=channels - 1)
        )
        for channel in dead:
            layer.out_mask[channel] = False
        out = layer(x)
        for channel in range(channels):
            if channel in dead:
                assert (out[:, channel] == 0).all()
            else:
                np.testing.assert_allclose(out[:, channel], reference[:, channel])

    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_training_cannot_resurrect_masked_channel(self, seed):
        rng = np.random.default_rng(seed)
        layer = nn.Conv2d(1, 4, 3, padding=1, rng=rng)
        layer.out_mask[2] = False
        layer.apply_mask()
        optimizer = nn.SGD([layer.weight, layer.bias], lr=0.5)
        for _ in range(3):
            out = layer(rng.standard_normal((2, 1, 5, 5)))
            layer.zero_grad()
            layer.backward(np.ones_like(out))
            optimizer.step()
        assert (layer.weight.data[2] == 0).all()
        assert layer.bias.data[2] == 0


class TestSoftmaxCrossEntropyProperties:
    @given(
        batch=st.integers(1, 6),
        classes=st.integers(2, 8),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=20, deadline=None)
    def test_loss_nonnegative_and_grad_bounded(self, batch, classes, seed):
        rng = np.random.default_rng(seed)
        loss_fn = nn.CrossEntropyLoss()
        logits = rng.standard_normal((batch, classes)) * 5
        labels = rng.integers(0, classes, batch)
        loss = loss_fn(logits, labels)
        assert loss >= 0.0
        grad = loss_fn.backward()
        # each row of the CE gradient has L1 norm <= 2/batch
        assert np.abs(grad).sum(axis=1).max() <= 2.0 / batch + 1e-9
