"""Tests for model checkpointing."""

import numpy as np
import pytest

from repro import nn
from repro.nn.serialization import load_model, save_model


class TestSaveLoad:
    def test_roundtrip(self, tiny_cnn, rng, tmp_path):
        path = tmp_path / "model.npz"
        x = rng.random((2, 1, 8, 8))
        expected = tiny_cnn(x)
        save_model(tiny_cnn, path)

        other = self._same_architecture(rng)
        load_model(other, path)
        np.testing.assert_allclose(other(x), expected, rtol=1e-6)

    def test_masks_roundtrip(self, tiny_cnn, rng, tmp_path):
        path = tmp_path / "model.npz"
        layer = tiny_cnn.last_conv()
        layer.out_mask[1] = False
        layer.apply_mask()
        save_model(tiny_cnn, path)

        other = self._same_architecture(rng)
        load_model(other, path)
        assert not other.last_conv().out_mask[1]
        x = rng.random((2, 1, 8, 8))
        assert (other(x) == tiny_cnn(x)).all()

    def test_architecture_mismatch_raises(self, tiny_cnn, rng, tmp_path):
        path = tmp_path / "model.npz"
        save_model(tiny_cnn, path)
        wrong = nn.Sequential(nn.Flatten(), nn.Linear(64, 5, rng=rng))
        with pytest.raises(KeyError):
            load_model(wrong, path)

    def _same_architecture(self, rng):
        fresh_rng = np.random.default_rng(999)
        return nn.Sequential(
            nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=fresh_rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(4, 6, kernel_size=3, padding=1, rng=fresh_rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Flatten(),
            nn.Linear(6 * 2 * 2, 5, rng=fresh_rng),
        )
