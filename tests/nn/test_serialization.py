"""Tests for model checkpointing."""

import numpy as np
import pytest

from repro import nn
from repro.nn.optim import SGD, Adam
from repro.nn.serialization import (
    apply_model_state,
    load_model,
    pack_model_state,
    save_model,
)


class TestSaveLoad:
    def test_roundtrip(self, tiny_cnn, rng, tmp_path):
        path = tmp_path / "model.npz"
        x = rng.random((2, 1, 8, 8))
        expected = tiny_cnn(x)
        save_model(tiny_cnn, path)

        other = self._same_architecture(rng)
        load_model(other, path)
        np.testing.assert_allclose(other(x), expected, rtol=1e-6)

    def test_masks_roundtrip(self, tiny_cnn, rng, tmp_path):
        path = tmp_path / "model.npz"
        layer = tiny_cnn.last_conv()
        layer.out_mask[1] = False
        layer.apply_mask()
        save_model(tiny_cnn, path)

        other = self._same_architecture(rng)
        load_model(other, path)
        assert not other.last_conv().out_mask[1]
        x = rng.random((2, 1, 8, 8))
        assert (other(x) == tiny_cnn(x)).all()

    def test_architecture_mismatch_raises(self, tiny_cnn, rng, tmp_path):
        path = tmp_path / "model.npz"
        save_model(tiny_cnn, path)
        wrong = nn.Sequential(nn.Flatten(), nn.Linear(64, 5, rng=rng))
        with pytest.raises(ValueError, match="does not fit"):
            load_model(wrong, path)

    def _same_architecture(self, rng):
        fresh_rng = np.random.default_rng(999)
        return nn.Sequential(
            nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=fresh_rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(4, 6, kernel_size=3, padding=1, rng=fresh_rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Flatten(),
            nn.Linear(6 * 2 * 2, 5, rng=fresh_rng),
        )


def small_model(seed=3):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(8, 4, rng=rng), nn.ReLU(), nn.Linear(4, 2, rng=rng)
    )


def drive(model, optimizer, steps, seed):
    """Deterministic fake training: same seed -> same gradient stream."""
    grad_rng = np.random.default_rng(seed)
    for _ in range(steps):
        for param in model.parameters():
            param.grad[...] = grad_rng.random(param.data.shape)
        optimizer.step()
        optimizer.zero_grad()


class TestOptimizerRoundTrip:
    """save/load must carry momentum so training continues, not restarts."""

    def test_sgd_momentum_round_trip(self, tmp_path):
        path = tmp_path / "model.npz"
        model = small_model()
        optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
        drive(model, optimizer, 3, seed=1)
        save_model(model, path, optimizer)

        fresh = small_model(seed=77)
        fresh_optimizer = SGD(fresh.parameters(), lr=0.1, momentum=0.9)
        load_model(fresh, path, fresh_optimizer)

        # one more identical step lands both runs on identical weights
        # only if the velocity buffers round-tripped
        drive(model, optimizer, 1, seed=9)
        drive(fresh, fresh_optimizer, 1, seed=9)
        np.testing.assert_array_equal(
            fresh.flat_parameters(), model.flat_parameters()
        )

    def test_adam_round_trip(self, tmp_path):
        path = tmp_path / "model.npz"
        model = small_model()
        optimizer = Adam(model.parameters(), lr=0.01)
        drive(model, optimizer, 3, seed=2)
        save_model(model, path, optimizer)

        fresh = small_model(seed=77)
        fresh_optimizer = Adam(fresh.parameters(), lr=0.01)
        load_model(fresh, path, fresh_optimizer)

        drive(model, optimizer, 1, seed=9)
        drive(fresh, fresh_optimizer, 1, seed=9)
        np.testing.assert_array_equal(
            fresh.flat_parameters(), model.flat_parameters()
        )

    def test_optimizer_state_requires_receiver(self, tmp_path):
        path = tmp_path / "model.npz"
        model = small_model()
        save_model(model, path, SGD(model.parameters(), lr=0.1, momentum=0.9))
        with pytest.raises(ValueError, match="optimizer"):
            load_model(small_model(), path)

    def test_optimizer_less_snapshot_is_compatible(self, tmp_path):
        path = tmp_path / "model.npz"
        model = small_model()
        save_model(model, path)
        fresh = small_model(seed=77)
        load_model(fresh, path, SGD(fresh.parameters(), lr=0.1))
        np.testing.assert_array_equal(
            fresh.flat_parameters(), model.flat_parameters()
        )

    def test_optimizer_type_mismatch_rejected(self, tmp_path):
        path = tmp_path / "model.npz"
        model = small_model()
        save_model(model, path, SGD(model.parameters(), lr=0.1, momentum=0.9))
        fresh = small_model()
        with pytest.raises(ValueError):
            load_model(fresh, path, Adam(fresh.parameters()))

    def test_missing_slot_buffer_named_in_error(self):
        model = small_model()
        optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
        arrays = pack_model_state(model, optimizer)
        del arrays["__opt__.0"]
        with pytest.raises(ValueError, match="slot buffers missing"):
            apply_model_state(
                small_model(), arrays,
                SGD(small_model().parameters(), lr=0.1, momentum=0.9),
            )


class TestStateErrors:
    def test_shape_mismatch_names_the_parameter(self):
        model = small_model()
        arrays = pack_model_state(model)
        name = next(k for k in arrays if not k.startswith("__"))
        arrays[name] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape"):
            apply_model_state(small_model(), arrays)

    def test_non_floating_dtype_rejected(self):
        model = small_model()
        arrays = pack_model_state(model)
        name = next(k for k in arrays if not k.startswith("__"))
        arrays[name] = arrays[name].astype(np.int64)
        with pytest.raises(ValueError, match="not floating"):
            apply_model_state(small_model(), arrays)

    def test_all_problems_reported_at_once(self):
        model = small_model()
        arrays = pack_model_state(model)
        names = [k for k in arrays if not k.startswith("__")]
        arrays[names[0]] = np.zeros((1, 1))
        del arrays[names[1]]
        arrays["bogus.weight"] = np.zeros(3)
        with pytest.raises(ValueError) as excinfo:
            apply_model_state(small_model(), arrays)
        message = str(excinfo.value)
        assert "shape" in message
        assert "missing" in message
        assert "unexpected" in message
