"""Tests for the model zoo architectures."""

import numpy as np
import pytest

from repro.nn import Conv2d, zoo


@pytest.mark.parametrize(
    "factory,in_channels,size",
    [
        (zoo.mnist_cnn, 1, 28),
        (zoo.fashion_cnn, 1, 28),
        (zoo.small_nn, 1, 28),
        (zoo.large_nn, 1, 28),
    ],
)
def test_grayscale_architectures_forward(factory, in_channels, size, rng):
    model = factory(rng, in_channels=in_channels, image_size=size)
    out = model(rng.random((2, in_channels, size, size)))
    assert out.shape == (2, 10)


def test_vgg_small_forward(rng):
    model = zoo.vgg_small(rng, width=4)
    out = model(rng.random((2, 3, 32, 32)))
    assert out.shape == (2, 10)


def test_vgg_small_depth(rng):
    """VGG-style: five conv layers, GAP head."""
    model = zoo.vgg_small(rng, width=4)
    assert len(model.conv_layers()) == 5


def test_table6_channel_widths(rng):
    small = zoo.small_nn(rng)
    large = zoo.large_nn(rng)
    assert small.conv_layers()[0].out_channels == 8
    assert small.last_conv().out_channels == 16
    assert large.conv_layers()[0].out_channels == 20
    assert large.last_conv().out_channels == 50


def test_last_conv_is_final_conv(rng):
    model = zoo.mnist_cnn(rng)
    convs = [m for m in model.modules() if isinstance(m, Conv2d)]
    assert model.last_conv() is convs[-1]
    assert model.last_conv().out_channels == 32


def test_gap_head_collapses_space(rng):
    """The classifier input per channel is spatially pooled to one value."""
    model = zoo.mnist_cnn(rng)
    last_linear = model[-1]
    assert last_linear.in_features == model.last_conv().out_channels


def test_build_model_by_name(rng):
    model = zoo.build_model("mnist_cnn", rng, in_channels=1, image_size=28)
    assert model(rng.random((1, 1, 28, 28))).shape == (1, 10)


def test_build_model_unknown_name(rng):
    with pytest.raises(ValueError, match="unknown model"):
        zoo.build_model("resnet152", rng, 3, 32)


def test_odd_image_size_rejected(rng):
    with pytest.raises(ValueError, match="not divisible"):
        zoo.mnist_cnn(rng, image_size=27)


def test_models_are_deterministic_per_seed():
    a = zoo.mnist_cnn(np.random.default_rng(5))
    b = zoo.mnist_cnn(np.random.default_rng(5))
    for (name_a, pa), (name_b, pb) in zip(a.named_parameters(), b.named_parameters()):
        assert name_a == name_b
        np.testing.assert_array_equal(pa.data, pb.data)
