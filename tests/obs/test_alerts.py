"""Tests for the SLO alert rules and engine (repro.obs.alerts).

Covers rule validation, ``for``-duration counting, hysteresis
(resolve threshold + resolve windows, anti-flap), the transition
timeline, engine state round-trips mid-streak, rule loading from JSON,
and the default catalog's internal consistency.
"""

import json

import pytest

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    ServiceMetrics,
    default_rules,
    load_rules,
    parse_rule,
)
from repro.obs.metrics import SLI_NAMES


def window(index, **slis):
    """A sealed-window record with every SLI defaulted to 0."""
    values = {name: 0.0 for name in SLI_NAMES}
    values.update({k: float(v) for k, v in slis.items()})
    return {
        "window": index,
        "start_round": index,
        "end_round": index,
        "slis": values,
        "counts": {},
        "solicited": 0,
        "latency": {},
    }


def feed(engine, values, sli="shed_rate"):
    """Evaluate one window per value; return the flat transition list."""
    out = []
    for i, value in enumerate(values):
        out.extend(engine.evaluate(window(i, **{sli: value})))
    return out


class TestAlertRule:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(name=""), "needs a name"),
            (dict(sli="nope"), "unknown SLI"),
            (dict(op="=="), "unknown op"),
            (dict(for_windows=0), "for_windows"),
            (dict(resolve_windows=0), "resolve_windows"),
        ],
    )
    def test_validation(self, kwargs, match):
        base = dict(name="r", sli="shed_rate", op=">", threshold=1.0)
        base.update(kwargs)
        with pytest.raises(ValueError, match=match):
            AlertRule(**base)

    def test_resolve_threshold_defaults_to_firing_threshold(self):
        rule = AlertRule("r", sli="shed_rate", op=">", threshold=2.0)
        assert rule.resolve_threshold == 2.0

    @pytest.mark.parametrize(
        "op, value, breached",
        [(">", 1.1, True), (">", 1.0, False), (">=", 1.0, True),
         ("<", 0.9, True), ("<", 1.0, False), ("<=", 1.0, True)],
    )
    def test_operators(self, op, value, breached):
        rule = AlertRule("r", sli="shed_rate", op=op, threshold=1.0)
        assert rule.breached(window(0, shed_rate=value)["slis"]) is breached

    def test_jsonable_round_trips_through_parse(self):
        rule = AlertRule(
            "r", sli="net_loss_rate", op=">", threshold=0.5,
            for_windows=2, resolve_threshold=0.25, resolve_windows=3,
        )
        clone = parse_rule(rule.to_jsonable())
        assert clone.to_jsonable() == rule.to_jsonable()


class TestForDuration:
    def make(self, for_windows=2):
        rule = AlertRule(
            "shed", sli="shed_rate", op=">", threshold=1.0,
            for_windows=for_windows,
        )
        return AlertEngine([rule])

    def test_single_window_blip_never_fires(self):
        engine = self.make(for_windows=2)
        assert feed(engine, [2.0, 0.0, 2.0, 0.0]) == []
        assert engine.is_firing("shed") is False

    def test_fires_after_consecutive_breaches(self):
        engine = self.make(for_windows=2)
        transitions = feed(engine, [2.0, 2.0])
        [fired] = transitions
        assert fired["action"] == "fired"
        assert fired["alert"] == "shed"
        assert fired["window"] == 1  # the window that completed the streak
        assert fired["value"] == 2.0
        assert fired["threshold"] == 1.0
        assert engine.is_firing("shed") is True

    def test_interrupted_streak_resets(self):
        engine = self.make(for_windows=3)
        assert feed(engine, [2.0, 2.0, 0.0, 2.0, 2.0]) == []

    def test_already_firing_does_not_refire(self):
        engine = self.make(for_windows=1)
        transitions = feed(engine, [2.0, 2.0, 2.0])
        assert [t["action"] for t in transitions] == ["fired"]


class TestHysteresis:
    def make(self):
        rule = AlertRule(
            "loss", sli="net_loss_rate", op=">", threshold=0.5,
            for_windows=1, resolve_threshold=0.25, resolve_windows=2,
        )
        return AlertEngine([rule])

    def test_between_bounds_neither_resolves_nor_refires(self):
        engine = self.make()
        # fire, then hover in the hysteresis band (0.25, 0.5]: the SLI is
        # below the firing bound but not under the resolve bound
        transitions = feed(
            engine, [0.9, 0.4, 0.3, 0.4, 0.3], sli="net_loss_rate"
        )
        assert [t["action"] for t in transitions] == ["fired"]
        assert engine.is_firing("loss") is True

    def test_resolves_after_consecutive_clear_windows(self):
        engine = self.make()
        transitions = feed(
            engine, [0.9, 0.1, 0.1], sli="net_loss_rate"
        )
        assert [t["action"] for t in transitions] == ["fired", "resolved"]
        resolved = transitions[-1]
        assert resolved["window"] == 2
        assert resolved["threshold"] == 0.25  # the resolve bound, not 0.5
        assert engine.is_firing("loss") is False

    def test_flap_inside_clear_streak_resets_it(self):
        engine = self.make()
        transitions = feed(
            engine, [0.9, 0.1, 0.6, 0.1, 0.1], sli="net_loss_rate"
        )
        assert [t["action"] for t in transitions] == ["fired", "resolved"]
        assert transitions[-1]["window"] == 4  # streak restarted at 3

    def test_can_refire_after_resolving(self):
        engine = self.make()
        transitions = feed(
            engine, [0.9, 0.1, 0.1, 0.9], sli="net_loss_rate"
        )
        assert [t["action"] for t in transitions] == [
            "fired", "resolved", "fired",
        ]


class TestAlertEngine:
    def test_rejects_duplicate_names(self):
        rule = AlertRule("r", sli="shed_rate", op=">", threshold=1.0)
        twin = AlertRule("r", sli="late_rate", op=">", threshold=1.0)
        with pytest.raises(ValueError, match="duplicate"):
            AlertEngine([rule, twin])

    def test_is_firing_unknown_name_raises(self):
        engine = AlertEngine(default_rules())
        with pytest.raises(KeyError, match="no alert rule"):
            engine.is_firing("nope")

    def test_timeline_accumulates_in_evaluation_order(self):
        engine = AlertEngine(
            [
                AlertRule("a", sli="shed_rate", op=">", threshold=1.0),
                AlertRule("b", sli="shed_rate", op=">", threshold=0.5),
            ]
        )
        engine.evaluate(window(0, shed_rate=2.0))
        assert [t["alert"] for t in engine.timeline] == ["a", "b"]
        assert engine.firing() == ["a", "b"]

    def test_state_round_trip_mid_streak(self):
        def build():
            return AlertEngine(
                [
                    AlertRule(
                        "shed", sli="shed_rate", op=">", threshold=1.0,
                        for_windows=3,
                    )
                ]
            )

        reference = build()
        feed(reference, [2.0, 2.0, 2.0])

        crashed = build()
        feed(crashed, [2.0, 2.0])  # two windows into the streak
        state = json.loads(json.dumps(crashed.state_dict()))

        resumed = build()
        resumed.load_state_dict(state)
        transitions = resumed.evaluate(window(2, shed_rate=2.0))
        assert [t["action"] for t in transitions] == ["fired"]
        assert resumed.timeline == reference.timeline
        assert resumed.state_dict() == reference.state_dict()

    def test_load_state_ignores_rules_removed_since_checkpoint(self):
        old = AlertEngine(
            [AlertRule("gone", sli="shed_rate", op=">", threshold=1.0)]
        )
        feed(old, [2.0])
        new = AlertEngine(
            [AlertRule("kept", sli="late_rate", op=">", threshold=1.0)]
        )
        new.load_state_dict(old.state_dict())  # must not raise
        assert new.is_firing("kept") is False


class TestRuleLoading:
    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown keys"):
            parse_rule(
                {"name": "r", "sli": "shed_rate", "op": ">",
                 "threshold": 1.0, "severity": "page"}
            )

    def test_parse_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing required"):
            parse_rule({"name": "r", "sli": "shed_rate"})

    def test_load_rules_list_form(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(
            json.dumps(
                [{"name": "r", "sli": "shed_rate", "op": ">",
                  "threshold": 1.0}]
            )
        )
        [rule] = load_rules(str(path))
        assert rule.name == "r"
        assert rule.for_windows == 1

    def test_load_rules_object_form(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(
            json.dumps(
                {"rules": [{"name": "r", "sli": "late_rate", "op": ">=",
                            "threshold": 2.0, "for_windows": 3}]}
            )
        )
        [rule] = load_rules(str(path))
        assert (rule.sli, rule.for_windows) == ("late_rate", 3)

    def test_load_rules_rejects_scalar_payload(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text('"not rules"')
        with pytest.raises(ValueError, match="JSON list"):
            load_rules(str(path))


class TestDefaultRules:
    def test_names_unique_and_slis_known(self):
        rules = default_rules()
        names = [r.name for r in rules]
        assert len(names) == len(set(names))
        assert all(r.sli in SLI_NAMES for r in rules)
        AlertEngine(rules)  # constructs cleanly

    def test_survive_a_json_round_trip(self):
        for rule in default_rules():
            assert parse_rule(
                json.loads(json.dumps(rule.to_jsonable()))
            ).to_jsonable() == rule.to_jsonable()

    def test_healthy_window_fires_nothing(self):
        engine = AlertEngine(default_rules())
        healthy = window(
            0, rounds=1, committed=1, commit_latency_p50=0.5,
            commit_latency_p90=0.5, commit_latency_p99=0.5,
        )
        for i in range(5):
            assert engine.evaluate(dict(healthy, window=i)) == []


class TestServiceMetrics:
    def test_bundle_defaults_to_the_catalog(self):
        metrics = ServiceMetrics()
        assert [r.name for r in metrics.engine.rules] == [
            r.name for r in default_rules()
        ]
        assert metrics.series == []
        assert metrics.timeline == []

    def test_state_round_trip(self):
        metrics = ServiceMetrics()
        metrics.engine.evaluate(window(0, watchdog_rollbacks=1.0))
        assert metrics.timeline  # watchdog rule fires immediately
        clone = ServiceMetrics()
        clone.load_state_dict(
            json.loads(json.dumps(metrics.state_dict()))
        )
        assert clone.timeline == metrics.timeline
        assert clone.engine.is_firing("watchdog-rollbacks") is True
        assert clone.state_dict() == metrics.state_dict()

    def test_load_none_is_a_noop(self):
        metrics = ServiceMetrics()
        metrics.load_state_dict(None)
        assert metrics.timeline == []
