"""Unit tests for trace analysis: span trees, breakdowns, and diffing."""

import io
import json

import pytest

from repro.obs import (
    RingBufferSink,
    Telemetry,
    TraceAnalysis,
    diff,
    load_trace,
    read_events,
)
from repro.persist.state import stitch_streams


def make_hub():
    hub = Telemetry()
    ring = hub.add_sink(RingBufferSink())
    return hub, ring


def sample_events():
    """A small but real stream: two rounds with waves and counters."""
    hub, ring = make_hub()
    hub.gauge("exec.workers", 2)
    with hub.span("fl.train", num_rounds=2):
        for round_index in range(2):
            with hub.span("fl.round", round=round_index):
                with hub.span("fl.local_training"):
                    with hub.span("exec.wave", index=0, tasks=2):
                        hub.record_span(
                            "exec.local_update", 0.4, client=0, status="ok"
                        )
                        hub.record_span(
                            "exec.local_update", 0.3, client=1, status="ok"
                        )
                with hub.span("fl.evaluation"):
                    pass
                hub.count("fl.rounds")
    hub.close()
    return ring.events


class TestTreeReconstruction:
    def test_children_nest_under_parents(self):
        analysis = TraceAnalysis(sample_events())
        [train] = [r for r in analysis.roots if r.name == "fl.train"]
        rounds = [c for c in train.children if c.name == "fl.round"]
        assert [r.attrs["round"] for r in rounds] == [0, 1]
        for round_node in rounds:
            names = [c.name for c in round_node.children]
            assert names == ["fl.local_training", "fl.evaluation"]

    def test_out_of_order_records_reconstruct_identically(self):
        events = sample_events()
        shuffled = list(reversed(events))
        ordered = TraceAnalysis(events)
        recovered = TraceAnalysis(shuffled)
        assert ordered.render_tree() == recovered.render_tree()
        assert ordered.by_name() == recovered.by_name()

    def test_zero_event_stream(self):
        analysis = TraceAnalysis([])
        assert analysis.roots == []
        assert analysis.by_name() == {}
        assert analysis.critical_path() == []
        assert analysis.summarize() == "(empty trace: no records)\n"
        assert "0 spans" in analysis.render_tree()

    def test_orphan_span_promoted_to_root(self):
        # a parent lost to a crash: the child still analyzes, as a root
        events = [
            {
                "v": 1, "seq": 0, "kind": "span", "name": "lonely",
                "ts": 0.0, "dur": 1.0, "span_id": 7, "parent_id": 99,
                "attrs": {},
            }
        ]
        analysis = TraceAnalysis(events)
        assert [r.name for r in analysis.roots] == ["lonely"]

    def test_stitched_stream_analyzes(self):
        # crash after round 0, resume, finish round 1: the stitched
        # stream must rebuild the same tree as an uninterrupted run
        hub1, ring1 = make_hub()
        span = hub1.span("fl.train", num_rounds=2)
        span.__enter__()
        with hub1.span("fl.round", round=0):
            pass
        train_span_id = span.span_id
        cursor = hub1.state_dict()
        with hub1.span("fl.round", round=1):  # past the checkpoint: replayed
            pass

        hub2, ring2 = make_hub()
        hub2.load_state_dict(cursor)
        resumed = hub2.resume_span("fl.train", train_span_id, num_rounds=2)
        with resumed:
            with hub2.span("fl.round", round=1):
                pass

        stitched = stitch_streams(
            [ring1.events, ring2.events], [cursor["seq"]]
        )
        analysis = TraceAnalysis(stitched)
        [train] = analysis.roots
        assert train.name == "fl.train"
        assert [c.attrs["round"] for c in train.children] == [0, 1]


class TestBreakdowns:
    def test_by_name_totals_and_counts(self):
        stats = TraceAnalysis(sample_events()).by_name()
        assert stats["exec.local_update"]["count"] == 4
        assert stats["exec.local_update"]["total"] == pytest.approx(1.4)
        assert stats["fl.round"]["count"] == 2

    def test_client_breakdown_groups_by_client_attr(self):
        clients = TraceAnalysis(sample_events()).client_breakdown()
        assert set(clients) == {0, 1}
        assert clients[0]["total"] == pytest.approx(0.8)
        assert clients[1]["total"] == pytest.approx(0.6)
        assert clients[0]["status"] == {"ok": 2}

    def test_wave_utilization_reads_workers_gauge(self):
        stats = TraceAnalysis(sample_events()).wave_utilization()
        assert stats["workers"] == 2
        assert stats["num_waves"] == 2
        assert stats["busy_seconds"] == pytest.approx(1.4)
        # wall is real wall-clock of the wave spans (tiny); utilization
        # uses busy/(wall*workers) so here it far exceeds 1 — clamp-free
        assert stats["utilization"] > 0

    def test_wave_utilization_explicit_workers_overrides_gauge(self):
        stats = TraceAnalysis(sample_events()).wave_utilization(workers=4)
        assert stats["workers"] == 4

    def test_critical_path_descends_largest_child(self):
        path = TraceAnalysis(sample_events()).critical_path()
        names = [entry["name"] for entry in path]
        assert names[0] == "fl.train"
        assert "fl.round" in names
        assert names[-1] == "exec.local_update"
        depths = [entry["depth"] for entry in path]
        assert depths == sorted(depths)

    def test_summarize_mentions_all_sections(self):
        text = TraceAnalysis(sample_events()).summarize()
        for heading in ("spans by total time", "executor waves", "counters"):
            assert heading in text
        assert "fl.rounds" in text


class TestTornLines:
    def _write(self, tmp_path, lines):
        path = tmp_path / "trace.jsonl"
        path.write_text("".join(lines))
        return str(path)

    def _records(self):
        hub, ring = make_hub()
        with hub.span("a"):
            hub.event("e")
        hub.close()
        return [json.dumps(r) + "\n" for r in ring.events]

    def test_torn_trailing_line_skipped_with_warning(self, tmp_path):
        lines = self._records()
        path = self._write(tmp_path, lines + ['{"v": 1, "seq": 99, "ki'])
        with pytest.warns(RuntimeWarning, match="torn trailing record"):
            events = read_events(path)
        assert len(events) == len(lines)

    def test_torn_line_strict_raises(self, tmp_path):
        path = self._write(tmp_path, self._records() + ["{broken"])
        with pytest.raises(ValueError, match="torn trailing record"):
            read_events(path, strict=True)

    def test_mid_stream_corruption_always_raises(self, tmp_path):
        lines = self._records()
        corrupted = lines[:1] + ["{definitely not json}\n"] + lines[1:]
        path = self._write(tmp_path, corrupted)
        with pytest.raises(ValueError, match="corrupt"):
            read_events(path)

    def test_load_trace_marks_truncated_and_adds_event(self, tmp_path):
        path = self._write(tmp_path, self._records() + ['{"torn'])
        with pytest.warns(RuntimeWarning):
            analysis = load_trace(path)
        assert analysis.truncated is True
        assert any(
            r["name"] == "trace.truncated"
            for r in analysis.records
            if r.get("kind") == "event"
        )
        assert "truncated" in analysis.summarize()

    def test_load_trace_clean_file_not_truncated(self, tmp_path):
        path = self._write(tmp_path, self._records())
        analysis = load_trace(path)
        assert analysis.truncated is False

    def test_load_trace_from_record_list_and_stream(self):
        events = sample_events()
        from_list = load_trace(events)
        from_stream = load_trace(
            io.StringIO("".join(json.dumps(r) + "\n" for r in events))
        )
        assert from_list.render_tree() == from_stream.render_tree()


class TestDiff:
    def _trace(self, slowdown=1.0):
        hub, ring = make_hub()
        with hub.span("fl.train"):
            hub.record_span("stage.training", 2.0 * slowdown)
            hub.record_span("stage.defense", 1.0)
        hub.close()
        return ring.events

    def test_injected_2x_slowdown_is_flagged(self):
        result = diff(self._trace(), self._trace(slowdown=2.0))
        [regression] = result.regressions
        assert regression["name"] == "stage.training"
        assert regression["ratio"] == pytest.approx(2.0)
        assert "REGRESSION" in result.render()

    def test_identical_traces_no_regressions(self):
        events = self._trace()
        assert diff(events, events).regressions == []

    def test_threshold_tolerates_small_slowdowns(self):
        result = diff(self._trace(), self._trace(slowdown=1.2), threshold=0.25)
        assert result.regressions == []
        result = diff(self._trace(), self._trace(slowdown=1.2), threshold=0.1)
        assert [r["name"] for r in result.regressions] == ["stage.training"]

    def test_min_seconds_suppresses_noise(self):
        base = [
            {"v": 1, "seq": 0, "kind": "span", "name": "tiny", "ts": 0.0,
             "dur": 1e-6, "span_id": 0, "parent_id": None, "attrs": {}},
        ]
        head = [dict(base[0], dur=1e-5)]  # 10x slower but microseconds
        assert diff(base, head).regressions == []

    def test_new_span_in_head_regresses_when_material(self):
        result = diff(self._trace(), self._trace() + [
            {"v": 1, "seq": 99, "kind": "span", "name": "surprise",
             "ts": 0.0, "dur": 5.0, "span_id": 50, "parent_id": None,
             "attrs": {}},
        ])
        assert "surprise" in [r["name"] for r in result.regressions]

    def test_disappeared_span_never_regresses(self):
        base = self._trace() + [
            {"v": 1, "seq": 99, "kind": "span", "name": "gone",
             "ts": 0.0, "dur": 5.0, "span_id": 50, "parent_id": None,
             "attrs": {}},
        ]
        result = diff(base, self._trace())
        assert "gone" not in [r["name"] for r in result.regressions]

    def test_accepts_analyses_and_raw_records(self):
        base, head = self._trace(), self._trace(slowdown=2.0)
        from_records = diff(base, head)
        from_analyses = diff(TraceAnalysis(base), TraceAnalysis(head))
        assert [r["name"] for r in from_records.regressions] == [
            r["name"] for r in from_analyses.regressions
        ]
