"""Tests for RunContext, the ambient-context stack, and kwarg deprecation."""

import warnings

import pytest

from repro.fl.executor import SerialExecutor
from repro.fl.faults import FaultModel
from repro.obs import (
    NULL_TELEMETRY,
    RingBufferSink,
    RunContext,
    Telemetry,
    current_context,
    use_context,
)
from repro.obs.context import warn_deprecated_kwarg


class TestRunContext:
    def test_defaults_are_plain(self):
        ctx = RunContext()
        assert ctx.telemetry is NULL_TELEMETRY
        assert ctx.rng is None
        assert ctx.executor is None
        assert ctx.fault_model is None

    def test_fault_model_wired_to_telemetry(self):
        hub = Telemetry()
        faults = FaultModel(seed=3)
        assert faults.telemetry is NULL_TELEMETRY
        RunContext(telemetry=hub, fault_model=faults)
        assert faults.telemetry is hub

    def test_repr_mentions_set_fields(self):
        ctx = RunContext(executor=SerialExecutor(), fault_model=FaultModel())
        text = repr(ctx)
        assert "executor=" in text and "fault_model=<set>" in text


class TestAmbientContext:
    def test_default_ambient_context_is_plain(self):
        ctx = current_context()
        assert ctx.telemetry is NULL_TELEMETRY
        assert ctx.executor is None

    def test_use_context_installs_and_restores(self):
        outer_default = current_context()
        mine = RunContext(telemetry=Telemetry())
        with use_context(mine) as installed:
            assert installed is mine
            assert current_context() is mine
            inner = RunContext()
            with use_context(inner):
                assert current_context() is inner
            assert current_context() is mine
        assert current_context() is outer_default

    def test_use_context_none_isolates(self):
        hub = Telemetry()
        with use_context(RunContext(telemetry=hub)):
            with use_context(None):
                assert current_context().telemetry is NULL_TELEMETRY

    def test_restored_even_after_exception(self):
        before = current_context()
        with pytest.raises(RuntimeError):
            with use_context(RunContext()):
                raise RuntimeError("boom")
        assert current_context() is before


class TestDeprecatedKwargs:
    def test_warn_deprecated_kwarg_message(self):
        with pytest.warns(DeprecationWarning, match="build_setup.*executor"):
            warn_deprecated_kwarg("build_setup", "executor", "executor")

    def test_defense_pipeline_executor_kwarg_warns_but_works(self):
        from repro.defense.pipeline import DefensePipeline
        from tests.fl.test_executor import build_world

        _, clients, _ = build_world()
        executor = SerialExecutor()
        with pytest.warns(DeprecationWarning, match="DefensePipeline"):
            pipeline = DefensePipeline(clients, lambda m: 0.9, executor=executor)
        assert pipeline.executor is executor
        assert pipeline.telemetry is NULL_TELEMETRY

    def test_defense_pipeline_context_preferred_no_warning(self):
        from repro.defense.pipeline import DefensePipeline
        from tests.fl.test_executor import build_world

        _, clients, _ = build_world()
        hub = Telemetry()
        hub.add_sink(RingBufferSink())
        executor = SerialExecutor()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            pipeline = DefensePipeline(
                clients,
                lambda m: 0.9,
                context=RunContext(telemetry=hub, executor=executor),
            )
        assert pipeline.executor is executor
        assert pipeline.telemetry is hub

    def test_evaluate_modes_executor_kwarg_warns(self, monkeypatch):
        import repro.experiments.common as common

        # a minimal fake setup: only the 'training' branch runs, so all
        # evaluate_modes needs is metrics()
        class FakeSetup:
            model = None

            def accuracy_fn(self):
                return lambda m: 1.0

            def metrics(self, model=None):
                return (1.0, 0.0)

        with pytest.warns(DeprecationWarning, match="evaluate_modes"):
            result = common.evaluate_modes(
                FakeSetup(), modes=("training",), executor=SerialExecutor()
            )
        assert result == {"training": (1.0, 0.0)}

    def test_build_setup_executor_kwarg_warns(self):
        from repro.experiments.common import build_setup
        from repro.experiments.scale import SMOKE

        with pytest.warns(DeprecationWarning, match="build_setup"):
            build_setup(
                "mnist", SMOKE, seed=3, rounds=1, executor=SerialExecutor()
            )


class TestContextThreading:
    def test_run_experiment_installs_context(self, monkeypatch):
        """The runner sees the passed context as the ambient one, and the
        whole run lands inside one `experiment` span."""
        import repro.experiments.registry as registry
        from repro.experiments.scale import SMOKE

        seen = {}

        def fake_runner(scale, seed):
            seen["ctx"] = current_context()
            return "result"

        monkeypatch.setitem(registry.EXPERIMENTS, "fake", fake_runner)
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        ctx = RunContext(telemetry=hub)
        assert registry.run_experiment("fake", SMOKE, seed=1, context=ctx) == "result"
        assert seen["ctx"] is ctx
        [span] = ring.events
        assert span["name"] == "experiment"
        assert span["attrs"]["id"] == "fake"
        assert span["attrs"]["seed"] == 1

    def test_build_setup_picks_up_ambient_context(self):
        from repro.experiments.common import build_setup
        from repro.experiments.scale import SMOKE

        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        with use_context(RunContext(telemetry=hub)):
            setup = build_setup("mnist", SMOKE, seed=3, rounds=1)
        names = {e["name"] for e in ring.events}
        assert "build_setup" in names
        assert "fl.round" in names
        assert setup.history.rounds  # the run actually trained

    def test_build_setup_context_fault_model_wraps_clients(self):
        from repro.experiments.common import build_setup
        from repro.experiments.scale import SMOKE
        from repro.fl.faults import FaultyClient

        ctx = RunContext(fault_model=FaultModel(seed=9))
        setup = build_setup("mnist", SMOKE, seed=3, rounds=1, context=ctx)
        assert all(isinstance(c, FaultyClient) for c in setup.clients)


class TestMetricsMemoization:
    def test_metrics_cached_until_model_changes(self):
        from repro.experiments.common import build_setup
        from repro.experiments.scale import SMOKE

        setup = build_setup("mnist", SMOKE, seed=3, rounds=1)
        first = setup.metrics()
        assert setup.metrics() == first  # hit: same versions, same masks

        # flip a prune mask in place (no Parameter.version bump): the
        # signature must notice and recompute
        layer = setup.model.last_conv()
        layer.out_mask[0] = False
        setup.metrics()  # recomputes against the masked model
        layer.out_mask[0] = True
        assert setup.metrics() == first

        # in-place weight surgery with mark_dirty invalidates too: the
        # cached signature must change (metric *values* may coincide —
        # a zeroed net can still score chance accuracy)
        before = setup._metrics_cache[setup.model][0]
        layer.weight.data[...] = 0.0
        layer.weight.mark_dirty()
        setup.metrics()
        assert setup._metrics_cache[setup.model][0] != before

    def test_metrics_cache_counts_real_evaluations(self, monkeypatch):
        from repro.experiments import common
        from repro.experiments.common import build_setup
        from repro.experiments.scale import SMOKE

        setup = build_setup("mnist", SMOKE, seed=3, rounds=1)
        calls = {"n": 0}
        real = common.test_accuracy

        def counting(model, dataset, **kwargs):
            calls["n"] += 1
            return real(model, dataset, **kwargs)

        monkeypatch.setattr(common, "test_accuracy", counting)
        setup.metrics()
        setup.metrics()
        setup.metrics()
        assert calls["n"] == 1  # two repeats served from cache
