"""End-to-end telemetry: stream coverage, replay stability, null overhead.

The acceptance contract for the observability layer:

* a traced run produces a schema-valid JSONL stream that covers every
  training round, every prune iteration, every AW delta step, and every
  fault draw;
* re-running the same seed yields a byte-identical canonical stream
  (timestamps normalized away);
* the NullTelemetry default keeps instrumentation overhead under 2% of
  a small run.
"""

import time

import pytest

from repro.defense.pipeline import DefenseConfig, DefensePipeline
from repro.fl.faults import FaultModel, wrap_clients
from repro.fl.server import FederatedServer
from repro.obs import (
    NULL_TELEMETRY,
    JSONLSink,
    RingBufferSink,
    RunContext,
    Telemetry,
    dumps_canonical,
    read_events,
    validate_stream,
)
from tests.fl.test_executor import build_world


def traced_run(hub, rounds=2):
    """One small federation: faulty training + FP/AW defense, traced."""
    model, clients, dataset = build_world()
    faults = FaultModel(dropout_prob=0.25, corrupt_prob=0.2, seed=17)
    faults.telemetry = hub
    clients = wrap_clients(clients, faults)
    server = FederatedServer(
        model, clients, dataset, max_client_strikes=2, telemetry=hub
    )
    history = server.train(rounds)
    pipeline = DefensePipeline(
        clients,
        lambda m: 0.9,
        DefenseConfig(method="mvp", fine_tune=True, fine_tune_rounds=1),
        context=RunContext(telemetry=hub),
    )
    report = pipeline.run(model)
    return history, report


class TestStreamCoverage:
    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("obs") / "trace.jsonl")
        hub = Telemetry()
        hub.add_sink(JSONLSink(path))
        history, report = traced_run(hub)
        hub.close()
        return list(read_events(path)), history, report

    def test_stream_schema_valid(self, trace):
        events, _, _ = trace
        assert events, "trace is empty"
        assert validate_stream(events) == []

    def test_every_round_has_a_span(self, trace):
        events, history, _ = trace
        rounds = [e for e in events if e["name"] == "fl.round"]
        assert len(rounds) == len(history.rounds)
        assert [r["attrs"]["round"] for r in rounds] == [
            m.round_index for m in history.rounds
        ]
        # round metrics are attached to the span
        for span, metrics in zip(rounds, history.rounds):
            assert span["attrs"]["test_acc"] == metrics.test_acc

    def test_every_prune_iteration_and_aw_step_covered(self, trace):
        events, _, report = trace
        prune_iters = [e for e in events if e["name"] == "defense.prune_iter"]
        kept = [e for e in prune_iters if e["attrs"]["kept"]]
        assert [e["attrs"]["channel"] for e in kept] == (
            report.pruning.pruned_channels
        )
        aw_steps = [e for e in events if e["name"] == "defense.aw_step"]
        assert [s["attrs"]["delta"] for s in aw_steps] == [
            step[0] for step in report.adjusting.trace
        ]

    def test_every_fault_draw_becomes_an_event(self, trace):
        events, history, _ = trace
        fault_updates = [e for e in events if e["name"] == "fault.update"]
        # one plan per (client, attempt): at least selected-per-round many
        assert len(fault_updates) > 0
        failed = [
            e
            for e in fault_updates
            if e["attrs"]["action"] in ("dropout", "timeout")
        ]
        # training + fine-tuning both draw from the same schedule; the
        # training share alone is history.num_dropouts
        assert len(failed) >= history.num_dropouts > 0

    def test_executor_spans_nest_inside_training(self, trace):
        events, _, _ = trace
        by_id = {
            e["span_id"]: e for e in events if e["kind"] == "span"
        }
        locals_ = [e for e in events if e["name"] == "exec.local_update"]
        assert locals_
        for record in locals_:
            parent = by_id[record["parent_id"]]
            assert parent["name"] == "exec.wave"

    def test_stage_timings_match_defense_report(self, trace):
        events, _, report = trace
        stage_spans = {
            e["name"]: e["dur"]
            for e in events
            if e["name"].startswith("stage.")
        }
        for stage, seconds in report.stage_seconds.items():
            assert stage_spans[f"stage.{stage}"] == pytest.approx(seconds)


class TestReplayStability:
    def test_same_seed_byte_identical_canonical_stream(self):
        blobs = []
        for _ in range(2):
            hub = Telemetry()
            ring = hub.add_sink(RingBufferSink())
            traced_run(hub)
            hub.close()
            blobs.append(dumps_canonical(ring.events))
        assert blobs[0] == blobs[1]


class TestNullOverhead:
    def test_null_telemetry_overhead_under_two_percent(self):
        """Per-op null-hub cost x the ops a smoke run makes stays <2%.

        Measured this way — rather than as a wall-clock ratio of two full
        runs — because the claim is about the instrumentation, and two
        full runs on a loaded CI box differ by more than 2% on their own.
        """
        null = NULL_TELEMETRY
        ops = 200_000
        start = time.perf_counter()
        for i in range(ops):
            with null.span("fl.round", round=i):
                null.event("fault.update", client=i, action="train")
                null.record_span("exec.local_update", 0.1, client=i)
                null.count("fl.rounds")
        per_op = (time.perf_counter() - start) / (ops * 4)

        from repro.eval.parallel_bench import _run_engine, make_executor

        # self-calibrating op budget: count what an instrumented run of
        # the same workload actually emits, then allow 10x headroom
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        with make_executor("serial", 1) as executor:
            _run_engine(executor, "smoke", telemetry=hub)
        hub.close()
        ops_per_run = 10 * ring.num_emitted

        with make_executor("serial", 1) as executor:
            run_start = time.perf_counter()
            _run_engine(executor, "smoke")  # telemetry=None -> null hub
            run_seconds = time.perf_counter() - run_start

        overhead_fraction = (per_op * ops_per_run) / run_seconds
        assert overhead_fraction < 0.02, (
            f"null-telemetry overhead {overhead_fraction:.2%} "
            f"({per_op * 1e9:.0f}ns/op x {ops_per_run} ops "
            f"vs {run_seconds:.3f}s run)"
        )
