"""Tests for the deterministic online metrics layer (repro.obs.metrics).

Covers the shared nearest-rank quantile rule, the fixed-boundary
histogram sketch (bucketing, merging, overflow, state round-trip), the
window fold (event map, span handling, ignored prefixes, round-less
events), online/offline parity, the service-facing drain, checkpoint
state round-trips mid-window, and the JSONL/Prometheus exporters.
"""

import io
import json

import pytest

from repro.obs.metrics import (
    EVENT_COUNTS,
    SLI_NAMES,
    HistogramSketch,
    MetricsAggregator,
    MetricsWindow,
    default_latency_boundaries,
    fold_records,
    nearest_rank,
    percentile_summary,
    read_series,
    render_prometheus,
    write_series,
)


class TestNearestRank:
    def test_empty_is_zero(self):
        assert nearest_rank([], 99) == 0.0

    def test_single_value_every_quantile(self):
        for q in (0, 1, 50, 99, 100):
            assert nearest_rank([7.0], q) == 7.0

    def test_nearest_rank_semantics(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert nearest_rank(values, 50) == 2.0  # ceil(0.5*4) = rank 2
        assert nearest_rank(values, 75) == 3.0
        assert nearest_rank(values, 99) == 4.0

    def test_summary_sorts_its_input(self):
        summary = percentile_summary([3.0, 1.0, 2.0])
        assert summary == {"p50": 2.0, "p90": 3.0, "p99": 3.0}

    def test_summary_custom_quantiles(self):
        assert percentile_summary([5.0], qs=(50, 99)) == {
            "p50": 5.0,
            "p99": 5.0,
        }


class TestDefaultBoundaries:
    def test_covers_zero_to_deadline(self):
        bounds = default_latency_boundaries(10.0, buckets=20)
        assert len(bounds) == 20
        assert bounds[0] == 0.5
        assert bounds[-1] == 10.0

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(deadline=0.0), "deadline"),
            (dict(deadline=-1.0), "deadline"),
            (dict(deadline=10.0, buckets=0), "buckets"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            default_latency_boundaries(**kwargs)


class TestHistogramSketch:
    def test_rejects_bad_boundaries(self):
        with pytest.raises(ValueError, match="at least one"):
            HistogramSketch([])
        with pytest.raises(ValueError, match="strictly increasing"):
            HistogramSketch([1.0, 1.0, 2.0])

    def test_value_lands_on_its_boundary_bucket(self):
        sketch = HistogramSketch([1.0, 2.0, 3.0])
        sketch.add(1.0)  # exactly on a boundary: that bucket
        sketch.add(1.5)
        sketch.add(9.0)  # overflow
        assert sketch.counts == [1, 1, 0, 1]
        assert sketch.total == 3
        assert sketch.max_value == 9.0

    def test_quantile_returns_bucket_boundary(self):
        sketch = HistogramSketch([1.0, 2.0, 4.0])
        for value in (0.2, 1.5, 1.6, 3.0):
            sketch.add(value)
        assert sketch.quantile(25) == 1.0
        assert sketch.quantile(50) == 2.0
        assert sketch.quantile(75) == 2.0
        assert sketch.quantile(100) == 4.0

    def test_overflow_quantile_is_exact_max(self):
        sketch = HistogramSketch([1.0])
        sketch.add(42.0)
        sketch.add(17.0)
        assert sketch.quantile(99) == 42.0

    def test_empty_quantile_and_mean_are_zero(self):
        sketch = HistogramSketch([1.0])
        assert sketch.quantile(99) == 0.0
        assert sketch.mean == 0.0

    def test_merge_is_addition(self):
        a, b = HistogramSketch([1.0, 2.0]), HistogramSketch([1.0, 2.0])
        a.add(0.5)
        b.add(1.5)
        b.add(50.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.total == 3
        assert a.max_value == 50.0
        assert a.sum == pytest.approx(52.0)

    def test_merge_order_does_not_change_quantiles(self):
        values = [0.3, 1.2, 2.7, 0.9, 1.9, 3.5]
        whole = HistogramSketch([1.0, 2.0, 3.0])
        for v in values:
            whole.add(v)
        left, right = HistogramSketch([1.0, 2.0, 3.0]), HistogramSketch([1.0, 2.0, 3.0])
        for v in values[:3]:
            left.add(v)
        for v in values[3:]:
            right.add(v)
        right.merge(left)  # reverse order vs the serial fold
        for q in (1, 25, 50, 75, 99):
            assert whole.quantile(q) == right.quantile(q)

    def test_merge_rejects_different_boundaries(self):
        with pytest.raises(ValueError, match="different boundaries"):
            HistogramSketch([1.0]).merge(HistogramSketch([2.0]))

    def test_state_round_trip(self):
        sketch = HistogramSketch([1.0, 2.0])
        sketch.add(0.5)
        sketch.add(99.0)
        clone = HistogramSketch.from_state(sketch.state_dict())
        assert clone.state_dict() == sketch.state_dict()
        assert clone.quantile(99) == sketch.quantile(99)

    def test_from_state_rejects_wrong_bucket_count(self):
        state = HistogramSketch([1.0, 2.0]).state_dict()
        state["counts"] = [0, 0]
        with pytest.raises(ValueError, match="buckets"):
            HistogramSketch.from_state(state)


def round_records(round_index, latency=2.5, quorum_met=True, events=(),
                  pending=0, solicited=2):
    """A minimal well-formed service round as a record list."""
    records = [
        {
            "kind": "event",
            "name": "service.dispatch",
            "attrs": {"round": round_index, "solicited": solicited},
        }
    ]
    for name in events:
        records.append(
            {"kind": "event", "name": name, "attrs": {"round": round_index}}
        )
    records.append(
        {
            "kind": "span",
            "name": "service.commit_latency",
            "dur": latency,
            "attrs": {"round": round_index, "quorum_met": quorum_met},
        }
    )
    records.append(
        {
            "kind": "span",
            "name": "service.round",
            "dur": 0.01,  # wall-clock: must never be folded
            "attrs": {"round": round_index, "pending": pending},
        }
    )
    return records


def feed(aggregator, records):
    for record in records:
        aggregator.emit(record)


class TestMetricsAggregator:
    def test_validation(self):
        with pytest.raises(ValueError, match="window_rounds"):
            MetricsAggregator(window_rounds=0)
        with pytest.raises(ValueError, match="round_interval"):
            MetricsAggregator(round_interval=0.0)

    def test_window_seals_on_round_span(self):
        agg = MetricsAggregator()
        feed(agg, round_records(0, latency=2.5, pending=3))
        [window] = agg.series
        assert window["window"] == 0
        assert window["start_round"] == 0
        assert window["end_round"] == 0
        assert window["solicited"] == 2
        slis = window["slis"]
        assert slis["rounds"] == 1.0
        assert slis["committed"] == 1.0
        assert slis["pending"] == 3.0
        # 2.5 lands in the (2.0, 2.5] bucket of the default 10s ladder
        assert slis["commit_latency_p50"] == 2.5

    def test_multi_round_window_seals_at_boundary(self):
        agg = MetricsAggregator(window_rounds=3)
        feed(agg, round_records(0))
        feed(agg, round_records(1))
        assert agg.series == []  # not yet sealed
        feed(agg, round_records(2))
        [window] = agg.series
        assert (window["start_round"], window["end_round"]) == (0, 2)
        assert window["slis"]["rounds"] == 3.0

    def test_event_fold_map(self):
        events = [
            "service.quorum_failed",
            "service.report_shed",
            "service.report_late",
            "net.sent",
            "net.sent",
            "net.dropped",
            "trust.quarantine",
        ]
        agg = MetricsAggregator()
        feed(agg, round_records(0, quorum_met=False, events=events))
        [window] = agg.series
        counts = window["counts"]
        assert counts["quorum_failed"] == 1
        assert counts["shed"] == 1
        assert counts["late"] == 1
        assert counts["net_sent"] == 2
        assert counts["net_lost"] == 1
        slis = window["slis"]
        assert slis["quorum_failure_rate"] == 1.0
        assert slis["net_loss_rate"] == 0.5  # 1 lost / 2 sent
        assert slis["trust_churn"] == 1.0

    def test_own_output_is_ignored(self):
        agg = MetricsAggregator()
        agg.emit(
            {"kind": "event", "name": "metrics.window", "attrs": {"round": 0}}
        )
        agg.emit(
            {"kind": "event", "name": "alert.fired", "attrs": {"round": 0}}
        )
        feed(agg, round_records(0))
        [window] = agg.series
        assert window["slis"]["rounds"] == 1.0  # nothing double-counted

    def test_counter_and_gauge_snapshots_not_folded(self):
        agg = MetricsAggregator()
        agg.emit({"kind": "counter", "name": "service.rounds", "value": 99})
        agg.emit({"kind": "gauge", "name": "exec.workers", "value": 4})
        feed(agg, round_records(0))
        assert agg.series[0]["slis"]["rounds"] == 1.0

    def test_roundless_event_folds_into_open_window(self):
        agg = MetricsAggregator(window_rounds=2)
        feed(agg, round_records(0, events=["net.sent"]))
        # a round-less shed (e.g. service.backoff-adjacent) mid-window
        agg.emit({"kind": "event", "name": "service.report_shed", "attrs": {}})
        feed(agg, round_records(1))
        assert agg.series[0]["counts"]["shed"] == 1

    def test_roundless_event_with_no_open_window_is_dropped(self):
        agg = MetricsAggregator()
        agg.emit({"kind": "event", "name": "service.report_shed", "attrs": {}})
        assert agg.series == []
        assert agg._open is None

    def test_wall_clock_round_dur_never_enters_latency(self):
        agg = MetricsAggregator()
        records = round_records(0)
        records[-1]["dur"] = 5000.0  # absurd wall-clock round duration
        feed(agg, records)
        [window] = agg.series
        assert window["slis"]["commit_latency_p99"] == 2.5

    def test_take_sealed_drains_once(self):
        agg = MetricsAggregator()
        feed(agg, round_records(0))
        assert [w["window"] for w in agg.take_sealed()] == [0]
        assert agg.take_sealed() == []
        feed(agg, round_records(1))
        assert [w["window"] for w in agg.take_sealed()] == [1]

    def test_state_round_trip_mid_window(self):
        # crash between round 1 and 2 of a 3-round window: the resumed
        # aggregator must seal the identical window
        reference = MetricsAggregator(window_rounds=3)
        for r in range(3):
            feed(reference, round_records(r, latency=1.0 + r))

        crashed = MetricsAggregator(window_rounds=3)
        for r in range(2):
            feed(crashed, round_records(r, latency=1.0 + r))
        state = json.loads(json.dumps(crashed.state_dict()))  # via JSON

        resumed = MetricsAggregator(window_rounds=3)
        resumed.load_state_dict(state)
        feed(resumed, round_records(2, latency=3.0))
        assert resumed.series == reference.series
        assert resumed.take_sealed() == reference.take_sealed()

    def test_sli_catalog_is_exactly_what_windows_carry(self):
        agg = MetricsAggregator()
        feed(agg, round_records(0))
        assert tuple(agg.series[0]["slis"]) == SLI_NAMES

    def test_every_fold_key_is_a_window_count(self):
        window = MetricsWindow(0, 0, [1.0])
        assert set(EVENT_COUNTS.values()) <= set(window.counts)


class TestFoldRecords:
    def test_sorts_by_seq_before_folding(self):
        records = []
        for seq, record in enumerate(
            round_records(0) + round_records(1, latency=7.5)
        ):
            records.append(dict(record, seq=seq))
        shuffled = list(reversed(records))
        assert (
            fold_records(shuffled).series == fold_records(records).series
        )

    def test_offline_matches_online(self):
        online = MetricsAggregator(window_rounds=2)
        records = []
        for r in range(4):
            for record in round_records(r, latency=0.5 * (r + 1)):
                records.append(dict(record, seq=len(records)))
        feed(online, records)
        offline = fold_records(records, window_rounds=2)
        assert json.dumps(online.series, sort_keys=True) == json.dumps(
            offline.series, sort_keys=True
        )


class TestExporters:
    def make_series(self):
        agg = MetricsAggregator()
        feed(agg, round_records(0, events=["net.sent", "net.dropped"]))
        feed(agg, round_records(1, latency=9.0))
        return agg.series

    def test_series_round_trip(self, tmp_path):
        series = self.make_series()
        path = tmp_path / "series.jsonl"
        assert write_series(series, str(path)) == 2
        loaded = read_series(str(path))
        assert [w["window"] for w in loaded] == [0, 1]
        assert loaded[0]["t"] == 0.0
        assert loaded[1]["t"] == 10.0
        assert loaded[0]["slis"] == series[0]["slis"]

    def test_write_is_deterministic_bytes(self):
        series = self.make_series()
        first, second = io.StringIO(), io.StringIO()
        write_series(series, first)
        write_series(series, second)
        assert first.getvalue() == second.getvalue()

    def test_prometheus_rendering(self):
        text = render_prometheus(
            self.make_series(), counters={"alert.firings": 3}
        )
        assert "repro_window 1\n" in text
        assert "repro_commit_latency_p50_sli" in text
        # cumulative across windows: 1 sent + 1 dropped in round 0
        assert "repro_net_sent_total 1\n" in text
        assert "repro_net_lost_total 1\n" in text
        assert "repro_alert_firings 3\n" in text
        assert "# TYPE repro_alert_firings counter" in text

    def test_prometheus_empty_series_renders_counters_only(self):
        text = render_prometheus([], counters={"alert.firings": 0})
        assert "repro_window" not in text
        assert "repro_alert_firings 0\n" in text

    def test_prometheus_integer_values_render_bare(self):
        text = render_prometheus(self.make_series())
        assert "repro_rounds_sli 1\n" in text
