"""Unit tests for the per-layer profiler and its global hook."""

import time

import numpy as np
import pytest

from repro.nn.layers import (
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import get_profile_hook
from repro.obs import (
    LayerProfiler,
    RingBufferSink,
    RunContext,
    Telemetry,
    maybe_profile,
    render_profile,
    use_context,
)


def make_model(rng=None):
    rng = rng or np.random.default_rng(0)
    return Sequential(
        Conv2d(1, 4, kernel_size=3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(4 * 16, 3, rng=rng),
    )


def forward_backward(model, seed=1):
    rng = np.random.default_rng(seed)
    x = rng.random((5, 1, 8, 8))
    y = np.array([0, 1, 2, 0, 1])
    loss_fn = CrossEntropyLoss()
    model.train()
    out = model(x)
    loss_fn.forward(out, y)
    model.backward(loss_fn.backward())
    return out


class TestBitwiseIdentity:
    def test_profiled_forward_backward_identical_to_unprofiled(self):
        plain_model = make_model()
        plain_out = forward_backward(plain_model)

        profiled_model = make_model()
        with LayerProfiler() as prof:
            profiled_out = forward_backward(profiled_model)

        assert np.array_equal(plain_out, profiled_out)
        assert np.array_equal(
            plain_model.flat_parameters(), profiled_model.flat_parameters()
        )
        for plain_p, prof_p in zip(
            plain_model.parameters(), profiled_model.parameters()
        ):
            assert np.array_equal(plain_p.grad, prof_p.grad)
        assert prof.stats  # and it actually measured something


class TestAggregation:
    def test_forward_and_backward_share_a_row(self):
        with LayerProfiler() as prof:
            forward_backward(make_model())
        for key, entry in prof.stats.items():
            assert entry["forward_calls"] == 1, key
            assert entry["backward_calls"] == 1, key

    def test_structural_keys_merge_model_clones(self):
        with LayerProfiler() as prof:
            forward_backward(make_model())
            forward_backward(make_model())  # a "clone": same architecture
        for entry in prof.stats.values():
            assert entry["forward_calls"] == 2
            assert entry["backward_calls"] == 2

    def test_keys_are_class_plus_shape(self):
        with LayerProfiler() as prof:
            forward_backward(make_model())
        assert "Conv2d(4,1,3,3)" in prof.stats  # first parameter's shape
        assert "ReLU(4,8,8)" in prof.stats  # activation shape, no batch dim
        assert "MaxPool2d(4,4,4)" in prof.stats  # output shape

    def test_container_not_double_counted(self):
        with LayerProfiler() as prof:
            forward_backward(make_model())
        assert not any(key.startswith("Sequential") for key in prof.stats)

    def test_bytes_accounted(self):
        with LayerProfiler() as prof:
            forward_backward(make_model())
        conv = prof.stats["Conv2d(4,1,3,3)"]
        assert conv["input_bytes"] == 5 * 1 * 8 * 8 * 8  # float64 input
        assert conv["output_bytes"] == 5 * 4 * 8 * 8 * 8
        assert conv["grad_bytes"] > 0


class TestHookLifecycle:
    def test_hook_installed_and_removed(self):
        assert get_profile_hook() is None
        with LayerProfiler() as prof:
            assert get_profile_hook() is prof
            assert prof.active
        assert get_profile_hook() is None

    def test_hook_removed_on_exception(self):
        with pytest.raises(RuntimeError):
            with LayerProfiler():
                raise RuntimeError("boom")
        assert get_profile_hook() is None

    def test_nested_profiler_stays_passive(self):
        with LayerProfiler() as outer:
            with LayerProfiler() as inner:
                assert not inner.active
                assert get_profile_hook() is outer
                forward_backward(make_model())
            assert get_profile_hook() is outer  # inner exit didn't remove it
        assert get_profile_hook() is None
        assert not inner.stats  # everything landed in the outer profiler
        assert outer.stats["Conv2d(4,1,3,3)"]["forward_calls"] == 1


class TestTelemetryIntegration:
    def test_flush_emits_aggregated_spans(self):
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        with hub.span("defense.run"):
            with LayerProfiler(hub):
                forward_backward(make_model())
        hub.close()
        forwards = [e for e in ring.events if e["name"] == "profile.forward"]
        backwards = [e for e in ring.events if e["name"] == "profile.backward"]
        assert len(forwards) == 5  # one per layer, sorted by key
        assert [e["attrs"]["layer"] for e in forwards] == sorted(
            e["attrs"]["layer"] for e in forwards
        )
        assert len(backwards) == 5
        run_span = [e for e in ring.events if e["name"] == "defense.run"]
        assert all(
            e["parent_id"] == run_span[0]["span_id"] for e in forwards
        )

    def test_null_telemetry_safe(self):
        with LayerProfiler() as prof:  # no hub: resolves to the null hub
            forward_backward(make_model())
        assert prof.stats  # in-memory stats still available
        assert "Conv2d" in prof.render()
        assert "MB moved" in render_profile(prof.stats)


class TestMaybeProfile:
    def test_disabled_context_returns_noop(self):
        with maybe_profile(RunContext()) as prof:
            assert prof.active is False
            forward_backward(make_model())
        assert get_profile_hook() is None
        assert prof.stats == {}

    def test_enabled_context_profiles(self):
        ctx = RunContext(profile=True)
        with maybe_profile(ctx) as prof:
            forward_backward(make_model())
        assert prof.stats

    def test_resolves_ambient_context(self):
        with use_context(RunContext(profile=True)):
            with maybe_profile() as prof:
                forward_backward(make_model())
        assert prof.stats
        with use_context(RunContext()):
            with maybe_profile() as prof:
                pass
        assert prof.stats == {}

    def test_explicit_enabled_overrides_context(self):
        with maybe_profile(RunContext(), enabled=True) as prof:
            forward_backward(make_model())
        assert prof.stats


class TestOffModeOverhead:
    def test_disabled_hook_overhead_under_two_percent(self):
        """Per-call hook cost x a smoke run's layer calls stays <2%.

        Measured per-op (like the null-telemetry gate) because two full
        wall-clock runs on a shared box differ by more than 2% on their
        own.  The off-mode hook is one module-global load plus an
        identity check per Module.__call__.
        """
        model = make_model()
        x = np.random.default_rng(0).random((5, 1, 8, 8))
        model.eval()
        calls = 2_000
        start = time.perf_counter()
        for _ in range(calls):
            model(x)
        baseline = time.perf_counter() - start
        per_forward = baseline / calls

        # count layer calls per forward, then price the hook check alone:
        # a None-returning global read, measured on a tight loop
        from repro.nn import module as module_mod

        reads = 1_000_000
        start = time.perf_counter()
        for _ in range(reads):
            hook = module_mod._PROFILE_HOOK
            if hook is not None:  # pragma: no cover - hook is None here
                raise AssertionError
        per_read = (time.perf_counter() - start) / reads

        layers_per_forward = 6  # Sequential + 5 leaf layers
        overhead = (per_read * layers_per_forward) / per_forward
        assert overhead < 0.02, (
            f"off-mode hook overhead {overhead:.2%} "
            f"({per_read * 1e9:.0f}ns/check x {layers_per_forward} "
            f"vs {per_forward * 1e6:.0f}us/forward)"
        )
