"""The defense-service telemetry names are registered and validate clean.

The schema registry (repro.obs.schema) is the contract between
instrumentation and trace tooling.  These tests pin both directions for
the streaming service: every name the service/trust layer emits is in
the registry, and a real service run produces a stream that passes
``validate_stream`` with ``unknown_names`` empty.
"""

import pytest

from repro.fl.service import DefenseService, ServiceConfig
from repro.obs.context import RunContext
from repro.obs.schema import (
    COUNTER_NAMES,
    EVENT_NAMES,
    GAUGE_NAMES,
    SPAN_NAMES,
    unknown_names,
    validate_stream,
)
from repro.obs.sinks import RingBufferSink
from repro.obs.telemetry import Telemetry

from tests.fl.test_service import ScriptClient, VectorModel, trust_config, turncoat


class TestRegisteredNames:
    @pytest.mark.parametrize(
        "name",
        [
            "service.cleanse",
            "service.commit_latency",
            "service.evaluation",
            "service.round",
            "service.run",
        ],
    )
    def test_service_spans_registered(self, name):
        assert name in SPAN_NAMES

    @pytest.mark.parametrize(
        "name",
        [
            "service.backoff",
            "service.cleanse_failed",
            "service.cleanse_skipped",
            "service.degraded",
            "service.dispatch",
            "service.no_response",
            "service.quarantine_adopted",
            "service.quorum_failed",
            "service.recovered",
            "service.report_invalid",
            "service.report_late",
            "service.report_rejected",
            "service.report_shed",
            "trust.quarantine",
            "trust.restore",
            "trust.score",
        ],
    )
    def test_service_and_trust_events_registered(self, name):
        assert name in EVENT_NAMES

    @pytest.mark.parametrize(
        "name",
        [
            "service.cleanses",
            "service.degraded_entries",
            "service.reports_admitted",
            "service.reports_invalid",
            "service.reports_late",
            "service.reports_no_response",
            "service.reports_rejected",
            "service.reports_shed",
            "service.rounds",
            "service.rounds_committed",
            "service.rounds_quorum_failed",
            "trust.quarantines",
            "trust.restores",
        ],
    )
    def test_service_and_trust_counters_registered(self, name):
        assert name in COUNTER_NAMES

    def test_pending_gauge_registered(self):
        assert "service.pending" in GAUGE_NAMES

    @pytest.mark.parametrize(
        "name",
        [
            "net.corrupt",
            "net.dedup",
            "net.dropped",
            "net.duplicate",
            "net.fenced",
            "net.healed",
            "net.partition",
            "net.reordered",
            "net.sent",
        ],
    )
    def test_transport_events_registered(self, name):
        assert name in EVENT_NAMES

    @pytest.mark.parametrize(
        "name",
        [
            "net.dedup_hits",
            "net.messages_corrupted",
            "net.messages_duplicated",
            "net.messages_fenced",
            "net.messages_held",
            "net.messages_lost",
            "net.messages_reordered",
        ],
    )
    def test_transport_counters_registered(self, name):
        assert name in COUNTER_NAMES

    def test_matrix_cell_span_registered(self):
        assert "matrix.cell" in SPAN_NAMES

    @pytest.mark.parametrize(
        "name",
        [
            "agg.clip",
            "agg.lr_flips",
            "agg.selection",
            "agg.weights",
            "attack.configured",
        ],
    )
    def test_aggregation_zoo_events_registered(self, name):
        assert name in EVENT_NAMES

    @pytest.mark.parametrize(
        "name", ["alert.fired", "alert.resolved", "metrics.window"]
    )
    def test_metrics_and_alert_events_registered(self, name):
        assert name in EVENT_NAMES

    @pytest.mark.parametrize("name", ["alert.firings", "alert.resolutions"])
    def test_alert_counters_registered(self, name):
        assert name in COUNTER_NAMES


class TestAggregationStreamValidates:
    """Aggregator-internal events validate clean on a real run.

    The reverse direction (every emitted name is registered) for the
    full zoo is pinned by TestExecutorParity in
    ``tests/fl/test_aggregator_state.py``; here we check the names are
    genuinely exercised, not just registered.
    """

    def test_zoo_run_emits_the_agg_vocabulary(self):
        import numpy as np

        from repro.fl.aggregation import build_aggregator

        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        rng = np.random.default_rng(3)
        updates = [rng.normal(0, 1.0, 16) for _ in range(5)]
        for spec in (
            "foolsgold",
            "robust_lr",
            "norm_clip:noise_std=0.001",
            "multi_krum:num_byzantine=1",
        ):
            build_aggregator(spec).aggregate(
                updates,
                client_ids=list(range(5)),
                round_index=0,
                telemetry=hub,
            )
        hub.close()
        assert unknown_names(ring.events) == []
        names = {e["name"] for e in ring.events if e["kind"] == "event"}
        assert {
            "agg.weights", "agg.lr_flips", "agg.clip", "agg.selection"
        } <= names


class TestServiceStreamValidates:
    """A real run's stream is structurally valid and fully registered."""

    @pytest.fixture(scope="class")
    def service_events(self):
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        clients = [ScriptClient(0, turncoat)] + [
            ScriptClient(i) for i in range(1, 5)
        ]
        service = DefenseService(
            VectorModel(),
            clients,
            test_set=None,
            config=ServiceConfig(
                round_deadline=10.0,
                quorum=1.0,  # full quorum: every report lands in the
                eval_every=0,  # trust reference, so the turncoat scores low
                cleanse_threshold=None,
                trust=trust_config(),
                probation_interval=1,
            ),
            context=RunContext(telemetry=hub),
        )
        history = service.run(5)
        hub.close()  # flush counter/gauge snapshots into the ring
        return history, list(ring.events)

    def test_stream_is_structurally_valid(self, service_events):
        _, events = service_events
        assert validate_stream(events) == []

    def test_every_emitted_name_is_registered(self, service_events):
        _, events = service_events
        assert unknown_names(events) == []

    def test_trust_lifecycle_names_actually_emitted(self, service_events):
        history, events = service_events
        # the turncoat is quarantined and later restored, so the run
        # exercises the full trust vocabulary, not just the happy path
        assert history.trust_quarantine_events
        names = {(r["kind"], r["name"]) for r in events}
        for expected in [
            ("span", "service.run"),
            ("span", "service.round"),
            ("span", "service.commit_latency"),
            ("event", "service.dispatch"),
            ("event", "trust.score"),
            ("event", "trust.quarantine"),
            ("event", "trust.restore"),
            ("counter", "service.rounds_committed"),
            ("counter", "trust.quarantines"),
            ("gauge", "service.pending"),
        ]:
            assert expected in names, expected

    def test_unregistered_name_is_flagged(self, service_events):
        _, events = service_events
        bogus = dict(events[0], kind="event", name="service.bogus")
        assert unknown_names([bogus]) == ["event service.bogus"]


class TestTransportStreamValidates:
    """A lossy-network run emits only registered net.* names, and the
    vocabulary is genuinely exercised (the reverse pin of
    TestRegisteredNames.test_transport_events_registered)."""

    @pytest.fixture(scope="class")
    def transport_events(self):
        from repro.fl.transport import make_network

        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        clients = [ScriptClient(i) for i in range(4)]
        service = DefenseService(
            VectorModel(),
            clients,
            test_set=None,
            config=ServiceConfig(
                round_deadline=10.0,
                quorum=0.5,
                eval_every=0,
                cleanse_threshold=None,
                trust_enabled=False,
            ),
            # the partition opens just after round 1's solicitations
            # land, so that round's updates are caught in flight and
            # held (solicits sent *into* the cut are dropped instead)
            network=make_network(
                "chaos:start=10.5,heal=25,duplicate=0.5,loss=0.2", seed=7
            ),
            context=RunContext(telemetry=hub),
        )
        service.run(6)
        hub.close()
        return list(ring.events)

    def test_stream_is_structurally_valid(self, transport_events):
        assert validate_stream(transport_events) == []

    def test_every_emitted_name_is_registered(self, transport_events):
        assert unknown_names(transport_events) == []

    def test_transport_names_actually_emitted(self, transport_events):
        names = {(r["kind"], r["name"]) for r in transport_events}
        for expected in [
            ("event", "net.sent"),
            ("event", "net.dropped"),
            ("event", "net.duplicate"),
            ("event", "net.dedup"),
            ("event", "net.partition"),
            ("event", "net.healed"),
            ("counter", "net.messages_lost"),
            ("counter", "net.messages_duplicated"),
            ("counter", "net.dedup_hits"),
            ("counter", "net.messages_held"),
        ]:
            assert expected in names, expected


class TestMetricsStreamValidates:
    """A metrics-on chaos run emits only registered metrics.*/alert.*
    names, and the alert vocabulary is genuinely exercised — the chaos
    partition fires the net-loss SLO and the heal resolves it."""

    @pytest.fixture(scope="class")
    def metrics_events(self):
        from repro.fl.transport import make_network
        from repro.obs.alerts import ServiceMetrics

        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        clients = [ScriptClient(i) for i in range(4)]
        metrics = ServiceMetrics()
        service = DefenseService(
            VectorModel(),
            clients,
            test_set=None,
            config=ServiceConfig(
                round_deadline=10.0,
                quorum=0.5,
                eval_every=0,
                cleanse_threshold=None,
                trust_enabled=False,
            ),
            network=make_network("chaos", seed=7),
            context=RunContext(telemetry=hub),
            metrics=metrics,
        )
        service.run(10)
        hub.close()
        return metrics, list(ring.events)

    def test_stream_is_structurally_valid(self, metrics_events):
        _, events = metrics_events
        assert validate_stream(events) == []

    def test_every_emitted_name_is_registered(self, metrics_events):
        _, events = metrics_events
        assert unknown_names(events) == []

    def test_metrics_and_alert_names_actually_emitted(self, metrics_events):
        metrics, events = metrics_events
        assert any(t["action"] == "fired" for t in metrics.timeline)
        assert any(t["action"] == "resolved" for t in metrics.timeline)
        names = {(r["kind"], r["name"]) for r in events}
        for expected in [
            ("event", "metrics.window"),
            ("event", "alert.fired"),
            ("event", "alert.resolved"),
            ("counter", "alert.firings"),
            ("counter", "alert.resolutions"),
        ]:
            assert expected in names, expected

    def test_window_events_carry_the_sli_payload(self, metrics_events):
        metrics, events = metrics_events
        windows = [
            r for r in events
            if r["kind"] == "event" and r["name"] == "metrics.window"
        ]
        assert len(windows) == len(metrics.series)
        assert windows[0]["attrs"]["slis"] == metrics.series[0]["slis"]
