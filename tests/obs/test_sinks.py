"""Unit tests for the telemetry sinks (repro.obs.sinks).

ConsoleSummarySink — the human-facing run summary — had only
integration coverage; these pin its aggregation rules, rendering and
close semantics directly.  The MetricsAggregator's sink behavior
(folding live off a hub, coexisting with other sinks) is pinned here
too: it is the one sink whose output feeds back into the stream.
"""

import io

from repro.obs.metrics import MetricsAggregator
from repro.obs.sinks import ConsoleSummarySink, RingBufferSink
from repro.obs.telemetry import Telemetry


class TestConsoleSummarySink:
    def make(self, records=()):
        sink = ConsoleSummarySink()
        for record in records:
            sink.emit(record)
        return sink

    def test_spans_accumulate_seconds_and_calls(self):
        sink = self.make(
            [
                {"kind": "span", "name": "fl.round", "dur": 1.5},
                {"kind": "span", "name": "fl.round", "dur": 0.5},
                {"kind": "span", "name": "fl.train", "dur": 4.0},
            ]
        )
        assert sink.span_seconds == {"fl.round": 2.0, "fl.train": 4.0}
        assert sink.span_counts == {"fl.round": 2, "fl.train": 1}

    def test_render_orders_spans_by_total_time(self):
        sink = self.make(
            [
                {"kind": "span", "name": "small", "dur": 0.5},
                {"kind": "span", "name": "big", "dur": 9.0},
            ]
        )
        text = sink.render()
        assert text.index("big") < text.index("small")
        assert "x1" in text

    def test_events_count_and_counters_keep_latest_value(self):
        sink = self.make(
            [
                {"kind": "event", "name": "service.report_late"},
                {"kind": "event", "name": "service.report_late"},
                {"kind": "counter", "name": "service.rounds", "value": 3},
                {"kind": "counter", "name": "service.rounds", "value": 7},
                {"kind": "gauge", "name": "exec.workers", "value": 4.0},
            ]
        )
        assert sink.event_counts == {"service.report_late": 2}
        assert sink.counters == {"service.rounds": 7}  # snapshot, not sum
        text = sink.render()
        assert "service.report_late" in text
        assert "x2" in text
        assert "service.rounds" in text
        assert "exec.workers" in text

    def test_unknown_kinds_are_ignored(self):
        sink = self.make([{"kind": "mystery", "name": "x"}, {"no": "kind"}])
        assert sink.render() == "== telemetry summary ==\n"

    def test_empty_stream_renders_header_only(self):
        assert self.make().render() == "== telemetry summary ==\n"

    def test_close_writes_to_configured_stream_once(self):
        stream = io.StringIO()
        sink = ConsoleSummarySink(stream=stream)
        sink.emit({"kind": "span", "name": "fl.round", "dur": 1.0})
        sink.close()
        sink.close()  # idempotent: hub close + explicit close double-call
        assert stream.getvalue().count("== telemetry summary ==") == 1
        assert "fl.round" in stream.getvalue()

    def test_repr_summarizes_volume(self):
        sink = self.make(
            [
                {"kind": "span", "name": "fl.round", "dur": 1.0},
                {"kind": "event", "name": "a"},
                {"kind": "event", "name": "b"},
            ]
        )
        assert repr(sink) == "ConsoleSummarySink(spans=1, events=2)"

    def test_live_on_a_hub(self):
        stream = io.StringIO()
        hub = Telemetry()
        hub.add_sink(ConsoleSummarySink(stream=stream))
        with hub.span("fl.train"):
            hub.event("service.report_late")
        hub.close()
        assert "fl.train" in stream.getvalue()


class TestMetricsAggregatorAsSink:
    def test_folds_live_alongside_other_sinks(self):
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        agg = hub.add_sink(MetricsAggregator())
        with hub.span("service.round", round=0) as span:
            hub.event("service.dispatch", round=0, solicited=3)
            hub.record_span(
                "service.commit_latency", 2.5, round=0, quorum_met=True
            )
            span.set(pending=1)
        hub.close()
        [window] = agg.series
        assert window["slis"]["committed"] == 1.0
        assert window["solicited"] == 3
        # the ring saw everything the aggregator folded
        assert any(r["name"] == "service.round" for r in ring.events)

    def test_close_is_harmless(self):
        hub = Telemetry()
        hub.add_sink(MetricsAggregator())
        hub.close()  # Sink.close default must not raise
