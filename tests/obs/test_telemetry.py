"""Unit tests for the telemetry hub, sinks, and schema."""

import copy
import io
import json
import pickle

import numpy as np
import pytest

from repro.obs import (
    NULL_TELEMETRY,
    ConsoleSummarySink,
    JSONLSink,
    NullTelemetry,
    RingBufferSink,
    Telemetry,
    canonical_events,
    dumps_canonical,
    ensure_telemetry,
    read_events,
    validate_event,
    validate_stream,
)


def make_hub():
    hub = Telemetry()
    ring = hub.add_sink(RingBufferSink())
    return hub, ring


class TestSpans:
    def test_span_emitted_at_exit_with_duration(self):
        hub, ring = make_hub()
        with hub.span("work", task=3) as span:
            assert ring.events == []  # nothing until exit
            span.set(result="ok")
        [record] = ring.events
        assert record["kind"] == "span"
        assert record["name"] == "work"
        assert record["attrs"] == {"task": 3, "result": "ok"}
        assert record["dur"] >= 0
        assert record["parent_id"] is None

    def test_nesting_sets_parent_ids(self):
        hub, ring = make_hub()
        with hub.span("outer"):
            with hub.span("inner"):
                hub.event("ping")
        ping, inner, outer = ring.events
        assert outer["parent_id"] is None
        assert inner["parent_id"] == outer["span_id"]
        assert ping["span_id"] == inner["span_id"]
        # children exit before parents, so they precede them in the stream
        assert inner["seq"] < outer["seq"]

    def test_span_ids_deterministic_counters(self):
        streams = []
        for _ in range(2):
            hub, ring = make_hub()
            with hub.span("a"):
                with hub.span("b"):
                    pass
            with hub.span("c"):
                pass
            streams.append(dumps_canonical(ring.events))
        assert streams[0] == streams[1]

    def test_record_span_attaches_to_open_span(self):
        hub, ring = make_hub()
        with hub.span("parent"):
            hub.record_span("remote", 0.5, client=2)
        remote, parent = ring.events
        assert remote["dur"] == 0.5
        assert remote["parent_id"] == parent["span_id"]
        assert remote["attrs"] == {"client": 2}

    def test_record_span_rejects_negative_duration(self):
        hub, _ = make_hub()
        with pytest.raises(ValueError, match="seconds"):
            hub.record_span("bad", -0.1)

    def test_misnested_exit_does_not_corrupt_stream(self):
        hub, ring = make_hub()
        outer = hub.span("outer")
        inner = hub.span("inner")
        outer.__enter__()
        inner.__enter__()
        outer.__exit__(None, None, None)  # wrong order
        inner.__exit__(None, None, None)
        assert hub.current_span is None
        assert validate_stream(ring.events) == []

    def test_numpy_attrs_coerced_to_json_types(self):
        hub, ring = make_hub()
        with hub.span("s", acc=np.float64(0.5), n=np.int64(3), ok=np.bool_(True)):
            pass
        attrs = ring.events[0]["attrs"]
        assert type(attrs["acc"]) is float
        assert type(attrs["n"]) is int
        assert type(attrs["ok"]) is bool
        json.dumps(attrs)


class TestCountersGauges:
    def test_count_accumulates_and_returns_total(self):
        hub, _ = make_hub()
        assert hub.count("x") == 1
        assert hub.count("x", 4) == 5
        assert hub.counters["x"] == 5

    def test_counter_no_fixed_width_overflow(self):
        hub, ring = make_hub()
        hub.count("big", 2**63 - 1)
        assert hub.count("big", 10) == 2**63 + 9  # past int64 max, exact
        hub.flush()
        [record] = [e for e in ring.events if e["kind"] == "counter"]
        assert record["value"] == 2**63 + 9

    def test_flush_emits_sorted_snapshots(self):
        hub, ring = make_hub()
        hub.count("z")
        hub.count("a")
        hub.gauge("m", 1.5)
        hub.flush()
        names = [e["name"] for e in ring.events]
        assert names == ["a", "z", "m"]  # counters sorted, then gauges
        assert validate_stream(ring.events) == []


class TestSinks:
    def test_fan_out_to_multiple_sinks(self):
        hub = Telemetry()
        rings = [hub.add_sink(RingBufferSink()) for _ in range(3)]
        hub.event("hello")
        assert all(len(ring.events) == 1 for ring in rings)
        assert rings[0].events == rings[1].events == rings[2].events

    def test_ring_buffer_evicts_but_counts(self):
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink(capacity=2))
        for i in range(5):
            hub.event(f"e{i}")
        assert ring.num_emitted == 5
        assert [e["name"] for e in ring.events] == ["e3", "e4"]

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        hub.add_sink(JSONLSink(path))
        with hub.span("outer", n=2):
            hub.event("mark", client=0)
        hub.count("c", 7)
        hub.close()
        replayed = list(read_events(path))
        assert replayed == ring.events
        assert validate_stream(replayed) == []

    def test_jsonl_borrowed_stream_not_closed(self):
        stream = io.StringIO()
        sink = JSONLSink(stream)
        sink.emit({"kind": "event", "name": "x"})
        sink.close()
        assert not stream.closed
        assert json.loads(stream.getvalue()) == {"kind": "event", "name": "x"}

    def test_console_summary_aggregates(self):
        out = io.StringIO()
        hub = Telemetry()
        hub.add_sink(ConsoleSummarySink(stream=out))
        with hub.span("fl.round"):
            pass
        with hub.span("fl.round"):
            pass
        hub.event("fault.update")
        hub.count("fl.rounds", 2)
        hub.close()
        text = out.getvalue()
        assert "fl.round" in text and "x2" in text
        assert "fault.update" in text
        assert "fl.rounds" in text

    def test_close_idempotent(self, tmp_path):
        hub = Telemetry()
        hub.add_sink(JSONLSink(str(tmp_path / "t.jsonl")))
        hub.event("once")
        hub.close()
        hub.close()  # second close is a no-op, not an error


class TestSchema:
    def test_all_kinds_validate(self):
        hub, ring = make_hub()
        with hub.span("s"):
            hub.event("e")
        hub.count("c")
        hub.gauge("g", 1.0)
        hub.flush()
        assert {e["kind"] for e in ring.events} == {
            "span", "event", "counter", "gauge",
        }
        assert validate_stream(ring.events) == []

    def test_validate_event_rejects_garbage(self):
        assert validate_event(None) is not None
        assert validate_event({"kind": "martian"}) is not None
        assert validate_event({"kind": "event", "name": "x"}) is not None

    def test_validate_stream_catches_seq_regression(self):
        hub, ring = make_hub()
        hub.event("a")
        hub.event("b")
        events = ring.events
        events[1]["seq"] = 0  # duplicate seq
        assert validate_stream(events)

    def test_canonical_strips_only_timing(self):
        hub, ring = make_hub()
        with hub.span("s", k=1):
            pass
        [canon] = canonical_events(ring.events)
        assert "ts" not in canon and "dur" not in canon
        assert canon["name"] == "s" and canon["attrs"] == {"k": 1}
        # original untouched
        assert "dur" in ring.events[0]

    def test_dumps_canonical_deterministic_bytes(self):
        hub, ring = make_hub()
        hub.event("e", b=2, a=1)
        blob = dumps_canonical(ring.events)
        assert isinstance(blob, bytes)
        assert blob == dumps_canonical(ring.events)
        assert dumps_canonical([]) == b""


class TestNullTelemetry:
    def test_ensure_telemetry_resolves_none(self):
        assert ensure_telemetry(None) is NULL_TELEMETRY
        hub = Telemetry()
        assert ensure_telemetry(hub) is hub

    def test_all_entry_points_noop(self):
        null = NULL_TELEMETRY
        with null.span("s", k=1) as span:
            assert span.set(x=2) is span
        null.event("e")
        null.record_span("r", 1.0)
        assert null.count("c", 5) == 0
        null.gauge("g", 1.0)
        null.flush()
        null.close()
        assert null.counters == {} and null.gauges == {}
        assert not null.enabled

    def test_span_is_shared_singleton(self):
        assert NULL_TELEMETRY.span("a") is NULL_TELEMETRY.span("b")

    def test_add_sink_rejected(self):
        with pytest.raises(TypeError, match="NullTelemetry"):
            NULL_TELEMETRY.add_sink(RingBufferSink())

    def test_pickle_and_deepcopy_resolve_to_singleton(self):
        assert pickle.loads(pickle.dumps(NULL_TELEMETRY)) is NULL_TELEMETRY
        assert copy.deepcopy(NullTelemetry()) is NULL_TELEMETRY

    def test_subclass_of_telemetry(self):
        # instrumented code can type-check against Telemetry only
        assert isinstance(NULL_TELEMETRY, Telemetry)
