"""Tests for atomic durable writes and checksummed reads."""

import hashlib
import os

import pytest

from repro.persist.atomic import (
    CorruptSnapshotError,
    atomic_write_bytes,
    atomic_write_json,
    read_verified_bytes,
    sha256_bytes,
)


class TestSha256:
    def test_matches_hashlib(self):
        payload = b"federated"
        assert sha256_bytes(payload) == hashlib.sha256(payload).hexdigest()

    def test_distinguishes_content(self):
        assert sha256_bytes(b"a") != sha256_bytes(b"b")


class TestAtomicWriteBytes:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "x.bin"
        atomic_write_bytes(str(path), b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"

    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_bytes(b"old")
        atomic_write_bytes(str(path), b"new")
        assert path.read_bytes() == b"new"

    def test_leaves_no_temp_files(self, tmp_path):
        atomic_write_bytes(str(tmp_path / "x.bin"), b"data")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["x.bin"]

    def test_failed_write_leaves_target_untouched(self, tmp_path):
        # writing into a missing directory fails before any rename
        target = tmp_path / "nodir" / "x.bin"
        with pytest.raises(OSError):
            atomic_write_bytes(str(target), b"data")
        assert not target.exists()


class TestAtomicWriteJson:
    def test_round_trips(self, tmp_path):
        import json

        path = tmp_path / "m.json"
        atomic_write_json(str(path), {"b": 2, "a": [1, 2]})
        assert json.loads(path.read_text()) == {"b": 2, "a": [1, 2]}

    def test_deterministic_bytes(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        atomic_write_json(str(a), {"x": 1, "y": 2})
        atomic_write_json(str(b), {"y": 2, "x": 1})
        assert a.read_bytes() == b.read_bytes()


class TestReadVerifiedBytes:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "x.bin"
        payload = b"snapshot-bytes"
        atomic_write_bytes(str(path), payload)
        assert read_verified_bytes(str(path), sha256_bytes(payload)) == payload

    def test_rejects_tampered_bytes(self, tmp_path):
        path = tmp_path / "x.bin"
        atomic_write_bytes(str(path), b"snapshot-bytes")
        checksum = sha256_bytes(b"snapshot-bytes")
        path.write_bytes(b"snapshot-bytEs")
        with pytest.raises(CorruptSnapshotError, match="integrity"):
            read_verified_bytes(str(path), checksum)

    def test_rejects_truncation(self, tmp_path):
        path = tmp_path / "x.bin"
        payload = os.urandom(256)
        atomic_write_bytes(str(path), payload)
        path.write_bytes(payload[:100])
        with pytest.raises(CorruptSnapshotError):
            read_verified_bytes(str(path), sha256_bytes(payload))

    def test_missing_file(self, tmp_path):
        with pytest.raises(CorruptSnapshotError):
            read_verified_bytes(str(tmp_path / "gone.bin"), sha256_bytes(b""))
