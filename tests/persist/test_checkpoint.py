"""Tests for the checkpoint directory: manifest, retention, fallback."""

import json
import os

import numpy as np
import pytest

from repro.persist import CheckpointManager, CorruptSnapshotError


def arrays_for(step: int) -> dict:
    return {
        "weights": np.full((3, 2), float(step)),
        "mask": np.array([True, False, True]),
    }


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        saved = manager.save("train", 4, arrays_for(4), {"round": 4, "note": "x"})
        loaded = manager.load_latest("train")
        assert loaded is not None
        assert loaded.kind == "train" and loaded.step == 4
        assert loaded.meta == {"round": 4, "note": "x"}
        np.testing.assert_array_equal(loaded.arrays["weights"], saved.arrays["weights"])
        assert loaded.arrays["weights"].dtype == np.float64
        assert loaded.arrays["mask"].dtype == np.bool_
        assert loaded.checksum == saved.checksum

    def test_empty_directory(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest("train") is None

    def test_latest_wins(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        for step in (1, 2, 3):
            manager.save("train", step, arrays_for(step), {"round": step})
        assert manager.load_latest("train").step == 3

    def test_kinds_are_namespaced(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save("train", 5, arrays_for(5), {})
        manager.save("defense", 1, arrays_for(1), {})
        assert manager.load_latest("train").step == 5
        assert manager.load_latest("defense").step == 1
        assert manager.load_latest("fine_tune") is None

    def test_reserved_meta_key_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        with pytest.raises(ValueError, match="reserved"):
            manager.save("train", 1, {"__meta__": np.zeros(2)}, {})

    def test_keep_validation(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointManager(tmp_path, keep=0)


class TestRetention:
    def test_old_snapshots_evicted(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for step in range(1, 5):
            manager.save("train", step, arrays_for(step), {})
        entries = manager.entries("train")
        assert [e["step"] for e in entries] == [3, 4]
        files = {p.name for p in tmp_path.iterdir()}
        assert "train-00000001.ckpt" not in files
        assert "train-00000004.ckpt" in files

    def test_retention_is_per_kind(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=1)
        manager.save("train", 1, arrays_for(1), {})
        manager.save("defense", 1, arrays_for(1), {})
        manager.save("train", 2, arrays_for(2), {})
        assert manager.load_latest("defense") is not None
        assert [e["step"] for e in manager.entries("train")] == [2]


class TestCorruptionFallback:
    def test_truncated_latest_falls_back(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save("train", 1, arrays_for(1), {"round": 1})
        manager.save("train", 2, arrays_for(2), {"round": 2})
        latest = tmp_path / "train-00000002.ckpt"
        latest.write_bytes(latest.read_bytes()[:64])  # torn write
        loaded = manager.load_latest("train")
        assert loaded.step == 1
        assert manager.last_rejected and manager.last_rejected[0][0] == (
            "train-00000002.ckpt"
        )

    def test_all_corrupt_returns_none(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save("train", 1, arrays_for(1), {})
        (tmp_path / "train-00000001.ckpt").write_bytes(b"garbage")
        assert manager.load_latest("train") is None
        assert len(manager.last_rejected) == 1

    def test_unlisted_snapshot_ignored(self, tmp_path):
        # a file the manifest doesn't know about (crash between the
        # snapshot rename and the manifest update) must not be loaded
        manager = CheckpointManager(tmp_path)
        manager.save("train", 1, arrays_for(1), {"round": 1})
        orphan = manager.save("train", 9, arrays_for(9), {"round": 9})
        manifest = json.loads((tmp_path / "MANIFEST.json").read_text())
        manifest["snapshots"] = [
            e for e in manifest["snapshots"] if e["step"] != 9
        ]
        (tmp_path / "MANIFEST.json").write_text(json.dumps(manifest))
        assert os.path.exists(orphan.path)
        assert manager.load_latest("train").step == 1

    def test_corrupt_manifest_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save("train", 1, arrays_for(1), {})
        (tmp_path / "MANIFEST.json").write_text("{not json")
        with pytest.raises(CorruptSnapshotError, match="manifest"):
            manager.load_latest("train")

    def test_unsupported_manifest_version(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save("train", 1, arrays_for(1), {})
        manifest = json.loads((tmp_path / "MANIFEST.json").read_text())
        manifest["version"] = 99
        (tmp_path / "MANIFEST.json").write_text(json.dumps(manifest))
        with pytest.raises(CorruptSnapshotError, match="version"):
            manager.load_latest("train")


class TestScope:
    def test_scopes_are_isolated(self, tmp_path):
        root = CheckpointManager(tmp_path, keep=5)
        a = root.scope("mnist-seed1")
        b = root.scope("mnist-seed2")
        a.save("train", 1, arrays_for(1), {"who": "a"})
        b.save("train", 7, arrays_for(7), {"who": "b"})
        assert a.load_latest("train").meta == {"who": "a"}
        assert b.load_latest("train").step == 7
        assert root.load_latest("train") is None
        assert a.keep == 5

    def test_scope_sanitizes_name(self, tmp_path):
        scoped = CheckpointManager(tmp_path).scope("a/b c:d")
        assert os.path.basename(scoped.directory) == "a_b_c_d"
