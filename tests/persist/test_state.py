"""Tests for state codecs: RNG streams, client state, stream stitching."""

import numpy as np
import pytest

from repro.persist.state import (
    DELTA_PREFIX,
    capture_client_states,
    restore_client_states,
    rng_state_from_jsonable,
    rng_state_to_jsonable,
    shared_fault_model,
    stitch_streams,
)


class StubClient:
    def __init__(self, client_id, rng=None, last_delta=None, faults=None):
        self.client_id = client_id
        if rng is not None:
            self.rng = rng
        if last_delta is not None:
            self._last_delta = last_delta
        if faults is not None:
            self.faults = faults


class TestRngCodec:
    def test_round_trip_continues_stream(self):
        rng = np.random.default_rng(7)
        rng.random(13)  # advance mid-stream
        state = rng_state_to_jsonable(rng)
        expected = rng.random(5)

        fresh = np.random.default_rng(0)
        rng_state_from_jsonable(fresh, state)
        np.testing.assert_array_equal(fresh.random(5), expected)

    def test_survives_json(self):
        import json

        rng = np.random.default_rng(3)
        rng.integers(0, 10, 20)
        state = json.loads(json.dumps(rng_state_to_jsonable(rng)))
        expected = rng.integers(0, 100, 8)

        fresh = np.random.default_rng(0)
        rng_state_from_jsonable(fresh, state)
        np.testing.assert_array_equal(fresh.integers(0, 100, 8), expected)

    def test_none_passes_through(self):
        assert rng_state_to_jsonable(None) is None
        rng_state_from_jsonable(np.random.default_rng(0), None)  # no-op


class TestClientStateCapture:
    def test_round_trip(self):
        rng_a = np.random.default_rng(1)
        rng_a.random(5)
        delta = np.arange(4.0)
        source = [
            StubClient(0, rng=rng_a, last_delta=delta),
            StubClient(1, rng=np.random.default_rng(2)),
        ]
        meta, arrays = capture_client_states(source)
        assert f"{DELTA_PREFIX}0" in arrays
        expected = source[0].rng.random(3)

        rebuilt = [
            StubClient(0, rng=np.random.default_rng(9)),
            StubClient(1, rng=np.random.default_rng(9)),
        ]
        restore_client_states(rebuilt, meta, arrays)
        np.testing.assert_array_equal(rebuilt[0].rng.random(3), expected)
        np.testing.assert_array_equal(rebuilt[0]._last_delta, delta)

    def test_unknown_client_raises(self):
        meta, arrays = capture_client_states([StubClient(3)])
        with pytest.raises(ValueError, match="different world"):
            restore_client_states([StubClient(4)], meta, arrays)

    def test_missing_delta_array_raises(self):
        meta, arrays = capture_client_states(
            [StubClient(0, last_delta=np.ones(2))]
        )
        with pytest.raises(ValueError, match="missing array"):
            restore_client_states([StubClient(0)], meta, {})


class TestSharedFaultModel:
    def test_finds_first_model(self):
        sentinel = object()
        clients = [StubClient(0), StubClient(1, faults=sentinel)]
        assert shared_fault_model(clients) is sentinel

    def test_none_for_plain_population(self):
        assert shared_fault_model([StubClient(0)]) is None


def ev(seq):
    return {"seq": seq, "name": f"event-{seq}"}


class TestStitchStreams:
    def test_single_segment_passthrough(self):
        events = [ev(0), ev(1), ev(2)]
        assert stitch_streams([events], []) == events

    def test_drops_replayed_tail_and_resume_preamble(self):
        # killed run emitted 0..5 but its successor resumed from seq 4:
        # events 4..5 were replayed and must come from the second segment
        first = [ev(0), ev(1), ev(2), ev(3), ev(4), ev(5)]
        second = [ev(4), ev(5), ev(6)]
        stitched = stitch_streams([first, second], [4])
        assert [e["seq"] for e in stitched] == [0, 1, 2, 3, 4, 5, 6]
        assert stitched[4] is second[0]

    def test_two_boundaries(self):
        a = [ev(0), ev(1), ev(2)]
        b = [ev(2), ev(3), ev(4)]
        c = [ev(3), ev(4), ev(5)]
        stitched = stitch_streams([a, b, c], [2, 3])
        assert [e["seq"] for e in stitched] == [0, 1, 2, 3, 4, 5]

    def test_boundary_count_mismatch(self):
        with pytest.raises(ValueError, match="resume seq"):
            stitch_streams([[ev(0)], [ev(1)]], [])
