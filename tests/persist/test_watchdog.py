"""Tests for the divergence watchdog's verdicts and persistence."""

import numpy as np
import pytest

from repro.persist import DivergenceWatchdog


class TestCheckAggregate:
    def test_finite_update_passes(self):
        assert DivergenceWatchdog().check_aggregate(np.ones(4)) is None

    def test_nan_always_rejected(self):
        update = np.ones(4)
        update[2] = np.nan
        reason = DivergenceWatchdog().check_aggregate(update)
        assert reason is not None and "non-finite" in reason

    def test_inf_always_rejected(self):
        update = np.ones(4)
        update[0] = np.inf
        assert DivergenceWatchdog().check_aggregate(update) is not None

    def test_norm_limit(self):
        dog = DivergenceWatchdog(max_update_norm=1.0)
        assert dog.check_aggregate(np.full(4, 0.1)) is None
        reason = dog.check_aggregate(np.full(4, 10.0))
        assert reason is not None and "norm" in reason

    def test_no_norm_limit_by_default(self):
        assert DivergenceWatchdog().check_aggregate(np.full(4, 1e30)) is None


class TestObserveAccuracy:
    def test_collapse_detected_after_warmup(self):
        dog = DivergenceWatchdog(collapse_drop=0.2, warmup_rounds=1)
        assert dog.observe_accuracy(0.8) is None  # warmup
        assert dog.observe_accuracy(0.85) is None
        reason = dog.observe_accuracy(0.5)
        assert reason is not None and "collapsed" in reason

    def test_warmup_never_collapses(self):
        dog = DivergenceWatchdog(collapse_drop=0.1, warmup_rounds=3)
        assert dog.observe_accuracy(0.9) is None
        assert dog.observe_accuracy(0.1) is None  # huge drop, still warmup
        assert dog.observe_accuracy(0.1) is None

    def test_best_does_not_advance_on_collapse(self):
        dog = DivergenceWatchdog(collapse_drop=0.2, warmup_rounds=0)
        dog.observe_accuracy(0.9)
        assert dog.observe_accuracy(0.5) is not None
        assert dog.best_accuracy == 0.9

    def test_disabled_without_threshold(self):
        dog = DivergenceWatchdog()
        dog.observe_accuracy(0.9)
        assert dog.observe_accuracy(0.0) is None

    def test_tolerated_dip_within_threshold(self):
        dog = DivergenceWatchdog(collapse_drop=0.5, warmup_rounds=0)
        dog.observe_accuracy(0.9)
        assert dog.observe_accuracy(0.6) is None


class TestValidationAndState:
    def test_bad_params_rejected(self):
        with pytest.raises(ValueError, match="max_update_norm"):
            DivergenceWatchdog(max_update_norm=0)
        with pytest.raises(ValueError, match="collapse_drop"):
            DivergenceWatchdog(collapse_drop=1.5)
        with pytest.raises(ValueError, match="warmup_rounds"):
            DivergenceWatchdog(warmup_rounds=-1)

    def test_state_round_trip(self):
        dog = DivergenceWatchdog(collapse_drop=0.2, warmup_rounds=0)
        dog.observe_accuracy(0.7)
        dog.observe_accuracy(0.8)
        dog.record_rollback()
        state = dog.state_dict()

        import json

        restored = DivergenceWatchdog(collapse_drop=0.2, warmup_rounds=0)
        restored.load_state_dict(json.loads(json.dumps(state)))
        assert restored.best_accuracy == 0.8
        assert restored.rounds_observed == 2
        assert restored.rollbacks == 1
        # the restored baseline keeps judging collapses
        assert restored.observe_accuracy(0.5) is not None

    def test_fresh_state(self):
        state = DivergenceWatchdog().state_dict()
        assert state == {
            "best_accuracy": None,
            "rounds_observed": 0,
            "rollbacks": 0,
        }
