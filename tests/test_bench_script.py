"""Smoke test for scripts/bench.py: runs end to end, emits valid JSON."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_bench_script_smoke(tmp_path):
    output = tmp_path / "BENCH_fl.json"
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    result = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "scripts" / "bench.py"),
            "--scale",
            "smoke",
            "--workers",
            "2",
            "--output",
            str(output),
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr

    payload = json.loads(output.read_text())
    for key in (
        "scale",
        "workers",
        "cpu_count",
        "num_clients",
        "timings",
        "speedups",
        "utilization",
        "critical_path",
        "oversubscribed",
        "bitwise_identical",
    ):
        assert key in payload, key
    assert payload["scale"] == "smoke"
    assert payload["workers"] == 2
    assert payload["bitwise_identical"] is True
    engines = {"serial", "thread", "process", "megabatch"}
    assert set(payload["timings"]) == engines
    assert set(payload["speedups"]) == engines - {"serial"}
    assert set(payload["utilization"]) == engines
    assert payload["critical_path"], "serial trace should yield a path"
    assert "speedup[thread]" in result.stdout
    assert "utilization[serial]" in result.stdout
    assert "critical path:" in result.stdout

    # the megabatch cohort-scaling curve rides along too
    cohort = payload["cohort_scaling"]
    assert cohort["wave_size"] >= 1
    assert [p["clients"] for p in cohort["points"]] == [8, 64]
    for point in cohort["points"]:
        assert point["bitwise_identical"] is True
        assert point["serial_seconds"] > 0
        assert point["megabatch_seconds"] > 0
        assert point["serial_estimated"] is False
    assert "cohort scaling" in result.stdout

    # the always-on defense service section rides along in the payload
    service = payload["service"]
    for key in (
        "scale",
        "rounds",
        "committed",
        "latency_p50",
        "latency_p99",
        "reports",
    ):
        assert key in service, key
    assert service["rounds"] >= 1
    assert 0 <= service["committed"] <= service["rounds"]
    for key in ("admitted", "late", "deferred", "shed", "rejected"):
        assert key in service["reports"], key
    assert "service:" in result.stdout
    assert "service reports:" in result.stdout
