"""Chaos harness: end-to-end runs under injected client unreliability.

Sweeps :class:`~repro.fl.faults.FaultModel` rates over full federated
runs (training and the FP -> FT -> AW defense) and asserts the
degradation contract:

* no fault rate in the 10-20% band crashes a round, a stage, or the
  pipeline;
* the global model stays finite after every round — corrupted deltas
  never reach the aggregate;
* dropouts, rejections, quorum skips and quarantines are *recorded*
  (``TrainingHistory`` / ``DefensePipeline.events``), not silent;
* the defense under faults performs no worse than the same defense with
  reliable clients (graceful degradation), and with every fault rate at
  zero the hardened stack is bitwise identical to a plain run.

Absolute ASR-collapse magnitudes are owned by the BENCH-scale
benchmarks (see DESIGN.md §2.2 and EXPERIMENTS.md for where this
substrate reproduces the paper's shape); at test scale the chaos
criterion is that fault injection does not change the defense's
outcome beyond tolerance.

All tests carry the ``chaos`` marker: deselect with ``-m "not chaos"``.
"""

import os
import signal

import numpy as np
import pytest

from repro import nn
from repro.data.dataset import Dataset
from repro.defense.pipeline import DefenseConfig, DefensePipeline
from repro.experiments.common import build_setup, clone_model
from repro.experiments.scale import SMOKE
from repro.fl.client import Client, LocalTrainingConfig
from repro.fl.executor import ProcessExecutor, ThreadExecutor
from repro.fl.faults import FaultModel, wrap_clients
from repro.fl.server import FederatedServer
from repro.nn.zoo import mnist_cnn
from repro.obs import RingBufferSink, Telemetry
from repro.persist import CheckpointManager

from repro.fl.service import DefenseService
from repro.fl.transport import LinkModel, Partition, SimulatedNetwork
from repro.obs.context import RunContext

from .fl.test_resume import CrashingAggregate, SimulatedCrash
from .fl.test_service import FixedTraffic, stub_config

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def ten_client_world():
    """A 10-client MNIST federation (clients + data; model built per test)."""
    return build_setup("mnist", SMOKE, seed=31, num_clients=10, rounds=1)


def fresh_model(world, seed=99):
    return mnist_cnn(
        np.random.default_rng(seed),
        in_channels=world.test.num_channels,
        image_size=world.test.image_size,
        num_classes=world.test.num_classes,
    )


class TestChaosTraining:
    def test_acceptance_scenario(self, ten_client_world):
        """20% dropout + 5% corrupted updates over a 10-client MNIST run:
        completes, stays finite every round, and logs skip/quarantine."""
        world = ten_client_world
        faults = FaultModel(dropout_prob=0.2, corrupt_prob=0.05, seed=7)
        server = FederatedServer(
            fresh_model(world),
            wrap_clients(world.clients, faults),
            world.test,
            backdoor_task=world.eval_task,
            min_quorum=0.9,
            max_client_strikes=1,
        )
        history = server.train(8)
        for metrics in history.rounds:
            assert np.isfinite(server.model.flat_parameters()).all()
            total = (
                metrics.num_accepted + len(metrics.dropped) + len(metrics.rejected)
            )
            assert total == metrics.num_selected
        assert history.num_dropouts > 0
        assert history.num_rejections > 0
        assert history.skipped_rounds  # sub-quorum rounds were skipped, not forced
        assert history.quarantine_events  # repeat corrupters were expelled
        assert server.quarantined == {cid for _, cid in history.quarantine_events}

    @pytest.mark.parametrize("dropout", [0.1, 0.2])
    def test_fault_rate_sweep(self, dropout, ten_client_world):
        world = ten_client_world
        faults = FaultModel(
            dropout_prob=dropout, corrupt_prob=0.05, stale_prob=0.05, seed=11
        )
        server = FederatedServer(
            fresh_model(world),
            wrap_clients(world.clients, faults),
            world.test,
            min_quorum=1,
            update_retries=1,
        )
        history = server.train(4)
        assert len(history) == 4
        assert np.isfinite(server.model.flat_parameters()).all()
        # with quorum 1 and a 10-client population, every round aggregates
        assert history.skipped_rounds == []

    def test_fault_events_match_history_accounting(self, ten_client_world):
        """Every telemetry `fault.update` draw reconciles with what the
        server recorded: failed plans == dropouts, corrupted train plans
        == rejections (retries disabled so draws map 1:1 to outcomes)."""
        world = ten_client_world
        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        faults = FaultModel(
            dropout_prob=0.2,
            corrupt_prob=0.1,
            stale_prob=0.05,
            seed=7,
            telemetry=hub,
        )
        server = FederatedServer(
            fresh_model(world),
            wrap_clients(world.clients, faults),
            world.test,
            min_quorum=1,
            update_retries=0,  # 1 draw per (client, round): exact accounting
            max_client_strikes=None,  # keep the population constant
            telemetry=hub,
        )
        history = server.train(6)
        hub.close()

        draws = [e for e in ring.events if e["name"] == "fault.update"]
        assert len(draws) == 6 * len(world.clients)

        failed = [
            e for e in draws if e["attrs"]["action"] in ("dropout", "timeout")
        ]
        assert len(failed) == history.num_dropouts > 0

        # every corruption kind fails validate_update, so corrupted
        # train plans are exactly the server's rejections
        corrupted = [
            e
            for e in draws
            if e["attrs"]["action"] == "train"
            and e["attrs"]["corruption"] is not None
        ]
        assert len(corrupted) == history.num_rejections > 0

        # stale replays are valid payloads: accepted, never rejected
        stale = [e for e in draws if e["attrs"]["action"] == "stale"]
        accepted = sum(r.num_accepted for r in history.rounds)
        clean = len(draws) - len(failed) - len(corrupted)
        assert clean == accepted
        assert len(stale) <= clean

    def test_straggler_timeouts_logged_as_dropouts(self, ten_client_world):
        world = ten_client_world
        faults = FaultModel(
            straggler_prob=0.3,
            straggler_delay=(20.0, 30.0),
            deadline_seconds=10.0,
            seed=5,
        )
        server = FederatedServer(
            fresh_model(world), wrap_clients(world.clients, faults), world.test
        )
        history = server.train(2)
        assert history.num_dropouts > 0
        assert any("deadline" in reason for r in history.rounds for _, reason in r.dropped)


class TestChaosDefense:
    @pytest.fixture(scope="class")
    def backdoored(self):
        return build_setup("mnist", SMOKE, seed=21)

    def _defend(self, setup, clients):
        model = clone_model(setup.model)
        pipeline = DefensePipeline(
            clients,
            setup.accuracy_fn(),
            DefenseConfig(method="mvp", fine_tune=True, fine_tune_rounds=2),
        )
        report = pipeline.run(model)
        ta, asr = setup.metrics(model)
        return ta, asr, report, pipeline

    def test_pipeline_degrades_gracefully(self, backdoored):
        """FP+FT+AW under 20% dropout / 5% corruption / 20% report faults
        completes and lands within tolerance of the fault-free defense."""
        clean_ta, clean_asr, clean_report, _ = self._defend(
            backdoored, backdoored.clients
        )
        faults = FaultModel(
            dropout_prob=0.2, corrupt_prob=0.05, report_fault_prob=0.2, seed=5
        )
        ta, asr, report, pipeline = self._defend(
            backdoored, wrap_clients(backdoored.clients, faults)
        )
        # all three stages ran on the surviving quorum
        assert report.pruning is not None
        assert report.fine_tuning is not None
        assert report.adjusting is not None
        # fault injection observed and logged, not silent
        assert (
            report.fine_tuning.num_dropped + report.fine_tuning.num_rejected > 0
            or pipeline.events
        )
        # graceful degradation: no worse than the reliable-client defense
        assert ta >= clean_ta - 0.15
        assert asr <= clean_asr + 0.10
        # and the usual integration bound: the defense never destroys the model
        ta_before, _ = backdoored.metrics()
        assert ta >= min(ta_before, clean_report.pruning.baseline_accuracy) - 0.2

    @pytest.mark.parametrize("executor_cls", [ThreadExecutor, ProcessExecutor])
    def test_chaos_scenario_identical_under_parallel_executor(
        self, executor_cls, ten_client_world
    ):
        """The full fault cocktail replays bit-for-bit on a worker pool:
        same params, same per-round fault log as the serial engine."""
        world = ten_client_world

        def run(executor):
            faults = FaultModel(
                dropout_prob=0.2, corrupt_prob=0.05, stale_prob=0.05, seed=7
            )
            server = FederatedServer(
                fresh_model(world),
                wrap_clients(world.clients, faults),
                world.test,
                backdoor_task=world.eval_task,
                min_quorum=0.9,
                update_retries=1,
                max_client_strikes=1,
                executor=executor,
            )
            history = server.train(4)
            return server.model.flat_parameters(), history

        # the shared clients' RNG streams advance during a run; snapshot
        # and restore them so both runs start from the same position
        states = [c.rng.bit_generator.state for c in world.clients]
        base_params, base_history = run(None)
        for client, state in zip(world.clients, states):
            client.rng.bit_generator.state = state
        with executor_cls(num_workers=2) as executor:
            params, history = run(executor)

        np.testing.assert_array_equal(params, base_params)
        for base, parallel in zip(base_history.rounds, history.rounds):
            assert parallel.test_acc == base.test_acc
            assert parallel.attack_acc == base.attack_acc
            assert parallel.dropped == base.dropped
            assert parallel.rejected == base.rejected
            assert parallel.quarantined == base.quarantined
            assert parallel.skipped == base.skipped

    def test_zero_fault_rates_bitwise_neutral(self):
        """FaultModel(0) + hardened stack == plain clients, bit for bit."""
        final_params, final_metrics = [], []
        for wrap in (False, True):
            setup = build_setup("mnist", SMOKE, seed=27, rounds=2)
            clients = setup.clients
            if wrap:
                clients = wrap_clients(clients, FaultModel(seed=123))
            server = FederatedServer(
                setup.model,
                clients,
                setup.test,
                backdoor_task=setup.eval_task,
                rng=np.random.default_rng(77),
            )
            history = server.train(2)
            assert history.skipped_rounds == []
            assert history.num_dropouts == history.num_rejections == 0
            final_params.append(setup.model.flat_parameters())
            final_metrics.append(setup.metrics())
        np.testing.assert_array_equal(final_params[0], final_params[1])
        assert final_metrics[0] == final_metrics[1]


# -- durability under violent failure ----------------------------------
#
# KamikazeClient is module-level so spawn workers can unpickle it; the
# flag file is how one SIGKILL communicates "already died" to the
# re-dispatched attempt.


class KamikazeClient(Client):
    """A client whose first ``local_update`` SIGKILLs its worker process."""

    def __init__(self, flag, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.flag = flag

    def local_update(self, model, global_params, round_index):
        if self.flag is not None and not os.path.exists(self.flag):
            with open(self.flag, "w") as handle:
                handle.write("killed")
            os.kill(os.getpid(), signal.SIGKILL)
        return super().local_update(model, global_params, round_index)


def durable_world(flag=None):
    """A small seeded federation; client 1 is a kamikaze when given a flag."""
    size, classes, num_clients, total = 8, 4, 4, 96
    data_rng = np.random.default_rng(13)
    images = data_rng.random((total, 1, size, size))
    labels = np.tile(np.arange(classes), total // classes)
    dataset = Dataset(images, labels)
    config = LocalTrainingConfig(
        lr=0.05, momentum=0.9, batch_size=16, local_epochs=1
    )
    clients = []
    for i, chunk in enumerate(np.array_split(np.arange(total), num_clients)):
        shard = dataset.subset(chunk)
        rng = np.random.default_rng(70 + i)
        if i == 1 and flag is not None:
            clients.append(KamikazeClient(flag, i, shard, config, rng))
        else:
            clients.append(Client(i, shard, config, rng))
    model_rng = np.random.default_rng(3)
    model = nn.Sequential(
        nn.Conv2d(1, 4, kernel_size=3, padding=1, rng=model_rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(4 * (size // 2) ** 2, classes, rng=model_rng),
    )
    return model, clients, dataset


class TestChaosDurability:
    """Kill the worker, then kill the coordinator, and still finish."""

    @pytest.mark.slow
    def test_worker_sigkill_then_coordinator_crash_then_resume(self, tmp_path):
        num_rounds = 4
        ref_model, ref_clients, ref_dataset = durable_world()
        with ProcessExecutor(num_workers=2) as executor:
            ref_history = FederatedServer(
                ref_model, ref_clients, ref_dataset, executor=executor
            ).train(num_rounds)
        ref_params = ref_model.flat_parameters()

        flag = str(tmp_path / "kamikaze.flag")
        manager = CheckpointManager(tmp_path / "ckpt", keep=10)

        # attempt 1: a worker is SIGKILLed in round 0 (and re-dispatched),
        # then the coordinator itself dies mid round 2
        model, clients, dataset = durable_world(flag)
        with ProcessExecutor(num_workers=2) as executor:
            server = FederatedServer(
                model,
                clients,
                dataset,
                aggregator=CrashingAggregate(3),
                executor=executor,
            )
            with pytest.raises(SimulatedCrash):
                server.train(num_rounds, checkpoint=manager)
            assert executor.redispatches >= 1
        assert os.path.exists(flag)  # the kamikaze really fired
        assert manager.load_latest("train").step == 2

        # attempt 2: a rebuilt (kamikaze-free) world resumes and finishes
        model2, clients2, dataset2 = durable_world()
        with ProcessExecutor(num_workers=2) as executor:
            history = FederatedServer(
                model2, clients2, dataset2, executor=executor
            ).train(num_rounds, checkpoint=manager, resume=True)

        assert model2.flat_parameters().tobytes() == ref_params.tobytes()
        assert history.to_jsonable() == ref_history.to_jsonable()

    @pytest.mark.slow
    def test_network_partition_survives_worker_and_coordinator_death(
        self, tmp_path
    ):
        """Satellite drill: SIGKILL a pool worker, then kill the
        coordinator mid-partition — while a slow client's updates sit
        held behind the cut — and resume to a byte-identical run with
        no double aggregation.

        The cut is scoped to client 3, whose reports are pushed past
        the 10.5s partition start every round: the fast majority keeps
        committing (so checkpoints are cut), and each snapshot carries
        the in-flight held queue plus the delivery gate's dedup/fence
        state.  CrashingAggregate fires on the third commit, i.e. mid
        round 2 with two held messages outstanding.
        """
        num_rounds = 6

        def run_service(world, manager, aggregate, executor, resume=False):
            model, clients, dataset = world
            service = DefenseService(
                model,
                clients,
                dataset,
                stub_config(quorum=2),
                aggregator=aggregate,
                traffic=FixedTraffic(
                    {
                        r: {0: 1.0, 1: 1.0, 2: 1.0, 3: 11.0}
                        for r in range(num_rounds)
                    }
                ),
                network=SimulatedNetwork(
                    link=LinkModel(seed=23),
                    partitions=[Partition(10.5, 25.0, clients=[3])],
                    name="cut3",
                ),
                context=RunContext(
                    telemetry=Telemetry(),
                    executor=executor,
                    checkpoint=manager,
                    resume=resume,
                ),
            )
            history = service.run(num_rounds)
            return service, history

        ref_manager = CheckpointManager(tmp_path / "ref", keep=10)
        with ProcessExecutor(num_workers=2) as executor:
            reference, ref_history = run_service(
                durable_world(), ref_manager, CrashingAggregate(999), executor
            )
        assert ref_history.network_counts()["held"] > 0
        ref_params = reference.model.flat_parameters()

        # attempt 1: the kamikaze worker dies in round 0 (re-dispatched),
        # then the coordinator dies aggregating round 2
        flag = str(tmp_path / "kamikaze.flag")
        manager = CheckpointManager(tmp_path / "ckpt", keep=10)
        with ProcessExecutor(num_workers=2) as executor:
            with pytest.raises(SimulatedCrash):
                run_service(
                    durable_world(flag), manager, CrashingAggregate(3), executor
                )
            assert executor.redispatches >= 1
        assert os.path.exists(flag)  # the kamikaze really fired

        snapshot = manager.load_latest("service")
        assert snapshot.step == 2
        # the snapshot carries the partition-held in-flight queue
        held = snapshot.meta["transport"]["network"]["held"]
        assert held and all(r["client_id"] == 3 for r in held)

        # attempt 2: a rebuilt (kamikaze-free) world resumes and finishes
        with ProcessExecutor(num_workers=2) as executor:
            resumed, history = run_service(
                durable_world(),
                manager,
                CrashingAggregate(999),
                executor,
                resume=True,
            )

        assert resumed.model.flat_parameters().tobytes() == ref_params.tobytes()
        assert history.to_jsonable() == ref_history.to_jsonable()
        assert resumed.gate.state_dict() == reference.gate.state_dict()
        assert resumed.network.stats == reference.network.stats
        assert resumed.network.in_flight() == 0
        origins = history.aggregated_origins
        assert len(origins) == len(set(origins)), "double aggregation"

    def test_torn_snapshot_rejected_by_checksum(self, tmp_path):
        """Truncation is detected, reported, and survived via fallback."""
        num_rounds = 4
        ref_model, ref_clients, ref_dataset = durable_world()
        ref_history = FederatedServer(
            ref_model, ref_clients, ref_dataset
        ).train(num_rounds)

        manager = CheckpointManager(tmp_path / "ckpt", keep=10)
        model, clients, dataset = durable_world()
        with pytest.raises(SimulatedCrash):
            FederatedServer(
                model, clients, dataset, aggregator=CrashingAggregate(4)
            ).train(num_rounds, checkpoint=manager)
        newest = manager.load_latest("train")
        assert newest.step == 3
        with open(newest.path, "r+b") as handle:
            data = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(data[: len(data) // 3])

        hub = Telemetry()
        ring = hub.add_sink(RingBufferSink())
        model2, clients2, dataset2 = durable_world()
        fresh = CheckpointManager(tmp_path / "ckpt", keep=10)
        history = FederatedServer(
            model2, clients2, dataset2, telemetry=hub
        ).train(num_rounds, checkpoint=fresh, resume=True)
        hub.close()

        assert np.array_equal(model2.flat_parameters(), ref_model.flat_parameters())
        assert history.to_jsonable() == ref_history.to_jsonable()
        resume_events = [e for e in ring.events if e["name"] == "persist.resume"]
        assert len(resume_events) == 1
        assert resume_events[0]["attrs"]["step"] == 2  # fell back one snapshot
        assert len(resume_events[0]["attrs"]["rejected"]) == 1
        assert fresh.last_rejected and "integrity" in fresh.last_rejected[0][1]
