"""Subprocess tests for scripts/dashboard.py (terminal + HTML views)."""

import os
import subprocess
import sys
from pathlib import Path

from repro.obs.metrics import MetricsAggregator, write_series

from tests.test_trace_script import write_service_trace

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_dashboard(*args):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "dashboard.py"), *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def write_series_file(path):
    agg = MetricsAggregator()
    for r, (latency, met) in enumerate([(2.5, True), (10.0, False)]):
        agg.emit(
            {
                "kind": "span",
                "name": "service.commit_latency",
                "dur": latency,
                "attrs": {"round": r, "quorum_met": met},
            }
        )
        agg.emit(
            {
                "kind": "span",
                "name": "service.round",
                "dur": 0.01,
                "attrs": {"round": r, "pending": 0},
            }
        )
    write_series(agg.series, str(path))
    return path


class TestDashboard:
    def test_renders_sparklines_from_a_trace(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        result = run_dashboard(str(trace))
        assert result.returncode == 0, result.stderr
        assert "2 window(s)" in result.stdout
        assert "commit_latency_p99" in result.stdout

    def test_renders_from_a_series_file(self, tmp_path):
        series = write_series_file(tmp_path / "series.jsonl")
        result = run_dashboard("--series", str(series))
        assert result.returncode == 0, result.stderr
        assert "rounds 0-1" in result.stdout

    def test_rules_overlay_shows_the_timeline(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        result = run_dashboard(str(trace), "--rules", "default")
        assert result.returncode == 0, result.stderr
        assert "alert timeline" in result.stdout
        assert "every SLO held" in result.stdout  # 2 quiet windows

    def test_html_output_is_self_contained(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        out = tmp_path / "dash.html"
        result = run_dashboard(str(trace), "--html", str(out))
        assert result.returncode == 0, result.stderr
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        assert "commit_latency_p99" in html

    def test_trace_and_series_are_mutually_exclusive(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        series = write_series_file(tmp_path / "series.jsonl")
        result = run_dashboard(str(trace), "--series", str(series))
        assert result.returncode == 2  # argparse error
        assert "exactly one" in result.stderr

    def test_empty_series_is_a_clean_error(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        result = run_dashboard("--series", str(empty))
        assert result.returncode == 1
        assert "no metric windows" in result.stderr
        assert "Traceback" not in result.stderr

    def test_deterministic_bytes(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        first = run_dashboard(str(trace), "--rules", "default")
        second = run_dashboard(str(trace), "--rules", "default")
        assert first.stdout == second.stdout
