"""Sanity checks for the example scripts.

Full runs of the examples are exercised manually (and in CI at smoke
scale); here we verify each script compiles and exposes the expected
CLI so a syntax regression cannot slip in unnoticed.
"""

import pathlib
import py_compile

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_EXAMPLES = {
    "semantic_backdoor.py",
    "quickstart.py",
    "dba_cifar_defense.py",
    "adaptive_attackers.py",
    "robust_aggregation.py",
    "robustness_matrix.py",
    "backdoor_localization.py",
    "unreliable_clients.py",
    "traced_run.py",
    "resume_run.py",
    "analyze_trace.py",
    "monitored_serve.py",
}


def test_all_expected_examples_exist():
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert EXPECTED_EXAMPLES <= present


@pytest.mark.parametrize("name", sorted(EXPECTED_EXAMPLES))
def test_example_compiles(name):
    py_compile.compile(str(EXAMPLES_DIR / name), doraise=True)


@pytest.mark.parametrize("name", sorted(EXPECTED_EXAMPLES))
def test_example_has_scale_flag(name):
    source = (EXAMPLES_DIR / name).read_text()
    assert "--scale" in source
    assert '"smoke"' in source
