"""End-to-end integration tests: attack, train, defend, evaluate.

These run at SMOKE scale — the goal is to exercise every subsystem
together (data -> partition -> clients -> attack -> server -> defense
-> metrics), not to validate the scientific shape (benchmarks do that
at BENCH scale).
"""

import numpy as np
import pytest

from repro.defense import DefenseConfig, DefensePipeline
from repro.eval.metrics import attack_success_rate
from repro.eval.metrics import test_accuracy as accuracy_of  # alias: bare name would be collected as a test
from repro.experiments.common import build_setup
from repro.experiments.scale import SMOKE
from repro.fl.client import MaliciousClient


class TestEndToEnd:
    def test_full_story_mnist(self):
        setup = build_setup("mnist", SMOKE, seed=21)
        ta_before, _ = setup.metrics()

        pipeline = DefensePipeline(
            setup.clients,
            setup.accuracy_fn(),
            DefenseConfig(method="mvp", fine_tune=True, fine_tune_rounds=2),
        )
        report = pipeline.run(setup.model)

        ta_after = accuracy_of(setup.model, setup.test)
        aa_after = attack_success_rate(setup.model, setup.eval_task, setup.test)
        assert 0.0 <= ta_after <= 1.0
        assert 0.0 <= aa_after <= 1.0
        # pipeline ran all three stages
        assert report.pruning is not None
        assert report.fine_tuning is not None
        assert report.adjusting is not None
        # defense never silently destroys the model beyond its thresholds
        assert ta_after >= min(ta_before, report.pruning.baseline_accuracy) - 0.2

    def test_fashion_pipeline_runs(self):
        setup = build_setup("fashion", SMOKE, seed=22, pattern_pixels=1)
        pipeline = DefensePipeline(
            setup.clients, setup.accuracy_fn(), DefenseConfig(fine_tune=False)
        )
        report = pipeline.run(setup.model)
        assert report.fine_tuning is None

    def test_cifar_dba_pipeline_runs(self):
        setup = build_setup("cifar", SMOKE, seed=23, dba=True)
        pipeline = DefensePipeline(
            setup.clients, setup.accuracy_fn(), DefenseConfig(fine_tune=False)
        )
        report = pipeline.run(setup.model)
        assert report.adjusting.num_zeroed >= 0

    def test_rap_and_mvp_both_run(self):
        setup = build_setup("mnist", SMOKE, seed=24, rounds=2)
        for method in ("rap", "mvp"):
            from repro.experiments.common import clone_model

            model = clone_model(setup.model)
            pipeline = DefensePipeline(
                setup.clients,
                setup.accuracy_fn(),
                DefenseConfig(method=method, fine_tune=False),
            )
            report = pipeline.run(model)
            assert report.pruning.num_pruned >= 0

    def test_client_feedback_fallback(self):
        """Defense without a server validation set: client-median oracle."""
        from repro.defense.pruning import client_feedback_accuracy

        setup = build_setup("mnist", SMOKE, seed=25, rounds=2)
        oracle = lambda model: client_feedback_accuracy(setup.clients, model)
        pipeline = DefensePipeline(
            setup.clients, oracle, DefenseConfig(fine_tune=False)
        )
        report = pipeline.run(setup.model)
        # attacker lies (reports 1.0) but the median stays honest
        assert 0.0 <= report.pruning.baseline_accuracy <= 1.0

    def test_adaptive_attackers_still_defensible(self):
        """§VI-B attacks run end to end without crashing the pipeline."""
        setup = build_setup(
            "mnist", SMOKE, seed=26, rounds=2, rank_attack=True, self_limit_delta=2.0
        )
        attacker = setup.clients[0]
        assert isinstance(attacker, MaliciousClient)
        pipeline = DefensePipeline(
            setup.clients, setup.accuracy_fn(), DefenseConfig(fine_tune=False)
        )
        report = pipeline.run(setup.model)
        assert report.pruning is not None
