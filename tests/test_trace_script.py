"""Subprocess tests for scripts/trace.py on small synthetic traces."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import JSONLSink, RunContext, Telemetry
from repro.obs.profile import maybe_profile

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_trace(*args):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "trace.py"), *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def write_trace(path, slowdown=1.0, profiled=False):
    hub = Telemetry([JSONLSink(str(path))])
    hub.gauge("exec.workers", 2)
    with hub.span("fl.train"):
        with hub.span("fl.round", round=0):
            with hub.span("exec.wave", index=0, tasks=2):
                hub.record_span(
                    "exec.local_update", 0.4 * slowdown, client=0, status="ok"
                )
                hub.record_span(
                    "exec.local_update", 0.3, client=1, status="ok"
                )
        hub.count("fl.rounds")
        if profiled:
            with maybe_profile(
                RunContext(profile=True), telemetry=hub
            ):
                import numpy as np

                from repro.nn.layers import Linear, Sequential

                model = Sequential(
                    Linear(4, 2, rng=np.random.default_rng(0))
                )
                model(np.zeros((1, 4)))
    hub.close()
    return path


class TestSummarize:
    def test_prints_phases_waves_and_counters(self, tmp_path):
        trace = write_trace(tmp_path / "run.jsonl")
        result = run_trace("summarize", str(trace))
        assert result.returncode == 0, result.stderr
        assert "spans by total time" in result.stdout
        assert "executor waves" in result.stdout
        assert "fl.rounds" in result.stdout
        assert "workers=2" in result.stdout  # picked up the gauge

    def test_workers_flag_overrides_gauge(self, tmp_path):
        trace = write_trace(tmp_path / "run.jsonl")
        result = run_trace("summarize", str(trace), "--workers", "8")
        assert result.returncode == 0, result.stderr
        assert "workers=8" in result.stdout


class TestTree:
    def test_renders_nested_spans(self, tmp_path):
        trace = write_trace(tmp_path / "run.jsonl")
        result = run_trace("tree", str(trace))
        assert result.returncode == 0, result.stderr
        assert "fl.train" in result.stdout
        assert "exec.wave" in result.stdout

    def test_max_depth_truncates(self, tmp_path):
        trace = write_trace(tmp_path / "run.jsonl")
        result = run_trace("tree", str(trace), "--max-depth", "1")
        assert result.returncode == 0, result.stderr
        assert "exec.wave" not in result.stdout


class TestDiff:
    def test_identical_traces_exit_zero(self, tmp_path):
        base = write_trace(tmp_path / "base.jsonl")
        head = write_trace(tmp_path / "head.jsonl")
        result = run_trace("diff", str(base), str(head))
        assert result.returncode == 0, result.stdout
        assert "no regressions" in result.stdout

    def test_injected_2x_slowdown_exits_nonzero(self, tmp_path):
        base = write_trace(tmp_path / "base.jsonl")
        head = write_trace(tmp_path / "head.jsonl", slowdown=2.0)
        result = run_trace("diff", str(base), str(head))
        assert result.returncode == 1, result.stdout
        assert "REGRESSION" in result.stdout
        assert "exec.local_update" in result.stdout


class TestProfile:
    def test_profiled_trace_tabulates_layers(self, tmp_path):
        trace = write_trace(tmp_path / "run.jsonl", profiled=True)
        result = run_trace("profile", str(trace))
        assert result.returncode == 0, result.stderr
        assert "Linear(2,4)" in result.stdout
        assert "MB moved" in result.stdout

    def test_unprofiled_trace_exits_nonzero_with_hint(self, tmp_path):
        trace = write_trace(tmp_path / "run.jsonl")
        result = run_trace("profile", str(trace))
        assert result.returncode == 1
        assert "no profile.* records" in result.stdout


class TestTornTrace:
    def test_summarize_survives_torn_trailing_line(self, tmp_path):
        trace = write_trace(tmp_path / "run.jsonl")
        with open(trace, "a") as handle:
            handle.write('{"v": 1, "seq": 999, "ki')
        result = run_trace("summarize", str(trace))
        assert result.returncode == 0, result.stderr
        assert "truncated" in result.stdout

    def test_summarize_warns_on_stderr(self, tmp_path):
        trace = write_trace(tmp_path / "run.jsonl")
        with open(trace, "a") as handle:
            handle.write('{"v": 1, "seq": 999, "ki')
        result = run_trace("summarize", str(trace))
        assert result.returncode == 0
        assert "truncated" in result.stderr

    def test_strict_makes_torn_trace_fatal(self, tmp_path):
        trace = write_trace(tmp_path / "run.jsonl")
        with open(trace, "a") as handle:
            handle.write('{"v": 1, "seq": 999, "ki')
        result = run_trace("--strict", "summarize", str(trace))
        assert result.returncode == 1
        assert "error:" in result.stderr


def write_service_trace(path):
    """A miniature streaming-service trace (registered names only)."""
    hub = Telemetry([JSONLSink(str(path))])
    with hub.span("service.run", rounds=2):
        for round_index, (latency, met) in enumerate([(2.5, True), (10.0, False)]):
            with hub.span("service.round", round=round_index):
                hub.event("service.dispatch", round=round_index, solicited=2)
                hub.record_span(
                    "service.commit_latency",
                    latency,
                    round=round_index,
                    quorum_met=met,
                )
                hub.count("service.rounds")
    hub.close()
    return path


class TestValidate:
    def test_clean_trace_passes(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        result = run_trace("validate", str(trace))
        assert result.returncode == 0, result.stdout
        assert "valid, registered, complete" in result.stdout

    def test_unregistered_name_fails(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        hub = Telemetry([JSONLSink(str(trace))])  # appends a fresh stream
        hub.event("service.bogus_event")
        hub.close()
        result = run_trace("validate", str(trace))
        assert result.returncode == 1
        assert "unregistered name: event service.bogus_event" in result.stdout

    def test_torn_trace_fails(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        with open(trace, "a") as handle:
            handle.write('{"v": 1, "seq": 999, "ki')
        result = run_trace("validate", str(trace))
        assert result.returncode == 1
        assert "truncated" in result.stdout

    def test_summarize_reports_service_commits(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        result = run_trace("summarize", str(trace))
        assert result.returncode == 0, result.stderr
        assert "service round commits" in result.stdout
        assert "committed=1" in result.stdout
        assert "quorum_failed=1" in result.stdout


class TestSummarizeJson:
    def test_json_format_is_machine_readable(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        result = run_trace("summarize", str(trace), "--format", "json")
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert payload["service"]["committed"] == 1
        assert payload["counters"]["service.rounds"] == 2
        assert {"phases", "spans", "critical_path", "events"} <= set(payload)

    def test_text_remains_the_default(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        result = run_trace("summarize", str(trace))
        with pytest.raises(json.JSONDecodeError):
            json.loads(result.stdout)


class TestMetrics:
    def test_table_shows_windows_and_active_slis(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        result = run_trace("metrics", str(trace))
        assert result.returncode == 0, result.stderr
        assert "2 metric window(s)" in result.stdout
        assert "commit_latency_p99" in result.stdout
        # SLIs that never moved stay out of the table
        assert "watchdog_rollbacks" not in result.stdout

    def test_json_format_round_trips_the_series(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        result = run_trace("metrics", str(trace), "--format", "json")
        assert result.returncode == 0, result.stderr
        series = json.loads(result.stdout)["windows"]
        assert [w["window"] for w in series] == [0, 1]
        assert series[0]["slis"]["committed"] == 1.0

    def test_prom_format_renders_exposition_text(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        result = run_trace("metrics", str(trace), "--format", "prom")
        assert result.returncode == 0, result.stderr
        assert "# TYPE repro_window gauge" in result.stdout
        assert "repro_commit_latency_p99_sli" in result.stdout

    def test_rules_overlay_prints_the_alert_timeline(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        result = run_trace("metrics", str(trace), "--rules", "default")
        assert result.returncode == 0, result.stderr
        assert "alert timeline" in result.stdout

    def test_out_writes_a_series_file(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        series = tmp_path / "series.jsonl"
        result = run_trace("metrics", str(trace), "--out", str(series))
        assert result.returncode == 0, result.stderr
        lines = [
            json.loads(line)
            for line in series.read_text().splitlines()
            if line
        ]
        assert [row["window"] for row in lines] == [0, 1]

    def test_trace_without_service_rounds_exits_nonzero(self, tmp_path):
        trace = write_trace(tmp_path / "run.jsonl")  # training-only trace
        result = run_trace("metrics", str(trace))
        assert result.returncode == 1
        assert "no service rounds" in result.stderr + result.stdout

    def test_missing_rules_file_is_a_clean_error(self, tmp_path):
        trace = write_service_trace(tmp_path / "service.jsonl")
        result = run_trace("metrics", str(trace), "--rules", "/nonexistent")
        assert result.returncode == 1
        assert "Traceback" not in result.stderr
